// Package shufcodec is the opt-in transport codec behind PaPar's §III-D
// communication optimization: "similar to compressed sparse column (CSC)
// format", the redundancy in grouped-triple shuffle payloads is packed out
// of the wire bytes before the page enters the transport's CRC32C envelope,
// and reconstructed byte-exactly on the receiving rank.
//
// The redundancy the paper exploits is visible in the hybrid-cut workflow's
// distribute shuffle: low-degree edges travel as packed groups — every
// member row of a group repeats the group's vertex (the paper's column
// index) and any group-constant addon such as the in-degree — and every
// record in a destination page repeats the same 4-byte bucket key. The codec
// removes exactly that:
//
//   - Keys are run-length encoded: one (runLen, key) header per run of
//     consecutive equal keys.
//   - A value that parses as a packed-group entry (the core engine's tag-1
//     EncodeGroup format) with >= 2 same-arity rows is re-encoded CSC-style:
//     columns whose encoded bytes are identical across all member rows are
//     stored once, variable columns per row; per-row length prefixes are
//     dropped (they are recomputed on decode, the encoders being
//     deterministic). Anything else is stored as a literal.
//
// Profitability is checked per page: EncodePage declines (ok=false) unless
// the compressed image is strictly smaller, so pathological inputs never
// grow on the wire. The codec is lossless at the KV level — DecodePage
// yields the identical (key, value) sequence, so partitions and replays are
// bit-identical with the codec on or off; only wire bytes (and therefore
// simulated transfer time) shrink.
//
// Compressed page layout (sealed with the keyval integrity trailer when
// page CRC mode is on; the count header sits where every page's count sits,
// so FinishPage/VerifySealedPage apply unchanged):
//
//	uint32 count
//	repeat{ uint32 runLen | uint32 klen | key | runLen x cval }
//
//	cval := 0x00 | uint32 vlen | value bytes            (literal)
//	      | 0x01 | gkey-val | uint32 nrows | uint8 arity
//	             | uint64 constMask | const col vals | per-row var col vals
//
// where "val" spans are the core engine's self-delimiting encodeValue
// bytes (tag 0: 8-byte LE int; tag 1: uint32 len + string bytes), copied
// verbatim so reconstruction is byte-exact.
package shufcodec

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/keyval"
)

const (
	cvalLiteral = 0x00
	cvalGroup   = 0x01

	// entryGroupTag is the core engine's packed-group entry marker (the
	// byte runDistribute prefixes to EncodeGroup output). The codec parses
	// that format structurally; values that do not match stay literals.
	entryGroupTag = 0x01

	// maxArity bounds the constant-column bitmap.
	maxArity = 64
)

// valLen returns the length of one self-delimiting encodeValue span at the
// start of b, or -1 if b does not start with a well-formed span.
func valLen(b []byte) int {
	if len(b) < 1 {
		return -1
	}
	switch b[0] {
	case 0x00: // int64, 8 bytes LE
		if len(b) < 9 {
			return -1
		}
		return 9
	case 0x01: // string, uint32 len + bytes
		if len(b) < 5 {
			return -1
		}
		n := 5 + int(binary.LittleEndian.Uint32(b[1:]))
		if n < 5 || len(b) < n {
			return -1
		}
		return n
	default:
		return -1
	}
}

// group is a structurally parsed packed-group entry: the group key's
// encoded bytes and every row's column spans (row-major).
type group struct {
	gkey  []byte
	arity int
	nrows int
	cols  [][]byte // cols[r*arity+c]
}

// parseGroupEntry parses v as a tag-1 packed-group entry with >= 2 rows of
// equal arity (<= maxArity). ok=false on any structural mismatch, including
// trailing bytes — the codec only transforms values it can rebuild exactly.
func parseGroupEntry(v []byte) (g group, ok bool) {
	if len(v) < 1 || v[0] != entryGroupTag {
		return g, false
	}
	p := 1
	kl := valLen(v[p:])
	if kl < 0 {
		return g, false
	}
	g.gkey = v[p : p+kl]
	p += kl
	if len(v)-p < 4 {
		return g, false
	}
	n := int(binary.LittleEndian.Uint32(v[p:]))
	p += 4
	if n < 2 || n > len(v) { // each row costs >= 1 byte; cheap hostile-count guard
		return g, false
	}
	for r := 0; r < n; r++ {
		if len(v)-p < 4 {
			return g, false
		}
		rowLen := int(binary.LittleEndian.Uint32(v[p:]))
		p += 4
		if rowLen < 4 || len(v)-p < rowLen {
			return g, false
		}
		row := v[p : p+rowLen]
		arity := int(binary.LittleEndian.Uint32(row))
		if r == 0 {
			if arity < 1 || arity > maxArity {
				return g, false
			}
			g.arity = arity
			g.cols = make([][]byte, 0, n*arity)
		} else if arity != g.arity {
			return g, false
		}
		q := 4
		for c := 0; c < g.arity; c++ {
			cl := valLen(row[q:])
			if cl < 0 {
				return g, false
			}
			g.cols = append(g.cols, row[q:q+cl])
			q += cl
		}
		if q != rowLen {
			return g, false
		}
		p += rowLen
	}
	if p != len(v) {
		return g, false
	}
	g.nrows = n
	return g, true
}

// constMask returns the bitmap of columns whose encoded bytes are identical
// across every row, plus the CSC payload size those choices produce.
func (g *group) constMask() (mask uint64, cscSize int) {
	cscSize = 1 + len(g.gkey) + 4 + 1 + 8
	for c := 0; c < g.arity; c++ {
		ref := g.cols[c]
		isConst := true
		for r := 1; r < g.nrows; r++ {
			if !bytes.Equal(g.cols[r*g.arity+c], ref) {
				isConst = false
				break
			}
		}
		if isConst {
			mask |= 1 << uint(c)
			cscSize += len(ref)
		} else {
			for r := 0; r < g.nrows; r++ {
				cscSize += len(g.cols[r*g.arity+c])
			}
		}
	}
	return mask, cscSize
}

// appendCval appends one compressed value: CSC form when the value is a
// packed group and CSC is strictly smaller, literal otherwise.
func appendCval(dst []byte, v []byte) []byte {
	if g, ok := parseGroupEntry(v); ok {
		mask, cscSize := g.constMask()
		if cscSize < 5+len(v) {
			dst = append(dst, cvalGroup)
			dst = append(dst, g.gkey...)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(g.nrows))
			dst = append(dst, byte(g.arity))
			dst = binary.LittleEndian.AppendUint64(dst, mask)
			for c := 0; c < g.arity; c++ {
				if mask&(1<<uint(c)) != 0 {
					dst = append(dst, g.cols[c]...)
				}
			}
			for r := 0; r < g.nrows; r++ {
				for c := 0; c < g.arity; c++ {
					if mask&(1<<uint(c)) == 0 {
						dst = append(dst, g.cols[r*g.arity+c]...)
					}
				}
			}
			return dst
		}
	}
	dst = append(dst, cvalLiteral)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
	return append(dst, v...)
}

// EncodePage compresses one wire page image (the keyval Encode format,
// integrity trailer included when page CRC mode is on). It returns the
// compressed page — a pooled buffer, sealed in CRC mode, ready for the
// transport; recycle it with keyval.Recycle — and ok=true only when the
// result is strictly smaller than the input. ok=false means "send the
// original"; the input page is never consumed or modified.
func EncodePage(page []byte) ([]byte, bool) {
	body, err := keyval.VerifySealedPage(page)
	if err != nil || len(body) < 4 {
		return nil, false
	}
	count := binary.LittleEndian.Uint32(body)
	if count == 0 {
		return nil, false
	}
	out := append(keyval.GetPage(len(page)), 0, 0, 0, 0)
	pos := 4
	var runKey []byte
	haveRun := false
	// Run assembly: cvals accumulate in scratch until the key changes, then
	// the run header and body flush to out together.
	scratch := keyval.GetPage(1 << 12)
	runLen := 0
	flush := func() {
		if !haveRun {
			return
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(runLen))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(runKey)))
		out = append(out, runKey...)
		out = append(out, scratch...)
		scratch = scratch[:0]
		runLen = 0
	}
	for i := uint32(0); i < count; i++ {
		if len(body)-pos < 8 {
			keyval.Recycle(out)
			keyval.Recycle(scratch)
			return nil, false
		}
		k := int(binary.LittleEndian.Uint32(body[pos:]))
		v := int(binary.LittleEndian.Uint32(body[pos+4:]))
		if len(body)-pos < 8+k+v {
			keyval.Recycle(out)
			keyval.Recycle(scratch)
			return nil, false
		}
		key := body[pos+8 : pos+8+k]
		val := body[pos+8+k : pos+8+k+v]
		pos += 8 + k + v
		if !haveRun || !bytes.Equal(key, runKey) {
			flush()
			runKey, haveRun = key, true
		}
		scratch = appendCval(scratch, val)
		runLen++
	}
	flush()
	keyval.Recycle(scratch)
	if pos != len(body) {
		keyval.Recycle(out)
		return nil, false
	}
	out = keyval.FinishPage(out, 0, int(count))
	if len(out) >= len(page) {
		keyval.Recycle(out)
		return nil, false
	}
	return out, true
}

// DecodePage inflates a compressed page back into an owned keyval.List
// holding the identical (key, value) sequence the sender compressed. The
// input buffer is not consumed; the caller recycles it. Structural damage
// surfaces as an error (the transport envelope and, in CRC mode, the page
// trailer make that unreachable for wire corruption — see DESIGN.md).
func DecodePage(buf []byte) (*keyval.List, error) {
	body, err := keyval.VerifySealedPage(buf)
	if err != nil {
		return nil, fmt.Errorf("shufcodec: %w", err)
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("shufcodec: short page (%d bytes)", len(body))
	}
	count := int(binary.LittleEndian.Uint32(body))
	prealloc := count
	if prealloc > 4096 {
		prealloc = 4096
	}
	l := keyval.NewList(prealloc)
	pos := 4
	var vbuf []byte              // reconstructed group value scratch
	rowCols := make([][]byte, 0) // per-row column spans scratch
	var constCols [maxArity][]byte
	remaining := count
	for remaining > 0 {
		if len(body)-pos < 8 {
			return nil, fmt.Errorf("shufcodec: truncated run header")
		}
		runLen := int(binary.LittleEndian.Uint32(body[pos:]))
		klen := int(binary.LittleEndian.Uint32(body[pos+4:]))
		pos += 8
		if runLen <= 0 || runLen > remaining {
			return nil, fmt.Errorf("shufcodec: bad run length %d (%d pairs remaining)", runLen, remaining)
		}
		if klen < 0 || len(body)-pos < klen {
			return nil, fmt.Errorf("shufcodec: truncated run key")
		}
		key := body[pos : pos+klen]
		pos += klen
		for j := 0; j < runLen; j++ {
			if len(body)-pos < 1 {
				return nil, fmt.Errorf("shufcodec: truncated value tag")
			}
			tag := body[pos]
			pos++
			switch tag {
			case cvalLiteral:
				if len(body)-pos < 4 {
					return nil, fmt.Errorf("shufcodec: truncated literal header")
				}
				vlen := int(binary.LittleEndian.Uint32(body[pos:]))
				pos += 4
				if vlen < 0 || len(body)-pos < vlen {
					return nil, fmt.Errorf("shufcodec: truncated literal value")
				}
				l.Add(key, body[pos:pos+vlen])
				pos += vlen
			case cvalGroup:
				kl := valLen(body[pos:])
				if kl < 0 {
					return nil, fmt.Errorf("shufcodec: bad group key span")
				}
				gkey := body[pos : pos+kl]
				pos += kl
				if len(body)-pos < 4+1+8 {
					return nil, fmt.Errorf("shufcodec: truncated group header")
				}
				nrows := int(binary.LittleEndian.Uint32(body[pos:]))
				arity := int(body[pos+4])
				mask := binary.LittleEndian.Uint64(body[pos+5:])
				pos += 13
				if nrows < 1 || nrows > len(body) || arity < 1 || arity > maxArity {
					return nil, fmt.Errorf("shufcodec: bad group shape (%d rows, arity %d)", nrows, arity)
				}
				for c := 0; c < arity; c++ {
					constCols[c] = nil
					if mask&(1<<uint(c)) != 0 {
						cl := valLen(body[pos:])
						if cl < 0 {
							return nil, fmt.Errorf("shufcodec: bad constant column span")
						}
						constCols[c] = body[pos : pos+cl]
						pos += cl
					}
				}
				// Rebuild the exact tag-1 entry: per-row length prefixes are
				// recomputed from the reassembled column spans.
				vbuf = vbuf[:0]
				vbuf = append(vbuf, entryGroupTag)
				vbuf = append(vbuf, gkey...)
				vbuf = binary.LittleEndian.AppendUint32(vbuf, uint32(nrows))
				for r := 0; r < nrows; r++ {
					rowCols = rowCols[:0]
					rowLen := 4
					for c := 0; c < arity; c++ {
						span := constCols[c]
						if span == nil {
							cl := valLen(body[pos:])
							if cl < 0 {
								return nil, fmt.Errorf("shufcodec: bad row column span")
							}
							span = body[pos : pos+cl]
							pos += cl
						}
						rowCols = append(rowCols, span)
						rowLen += len(span)
					}
					vbuf = binary.LittleEndian.AppendUint32(vbuf, uint32(rowLen))
					vbuf = binary.LittleEndian.AppendUint32(vbuf, uint32(arity))
					for _, span := range rowCols {
						vbuf = append(vbuf, span...)
					}
				}
				l.Add(key, vbuf)
			default:
				return nil, fmt.Errorf("shufcodec: unknown value tag 0x%02x", tag)
			}
		}
		remaining -= runLen
	}
	if pos != len(body) {
		return nil, fmt.Errorf("shufcodec: %d trailing bytes", len(body)-pos)
	}
	return l, nil
}
