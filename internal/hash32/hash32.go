// Package hash32 provides allocation-free FNV-1a hashing for the hot
// partitioning kernels.
//
// The stdlib hash/fnv forces a heap allocation per hasher (fnv.New32a
// returns an interface), which the profile shows on every shuffled pair:
// mrmpi.HashPartitioner, core.HashValue and powerlyra.HashVertex all hashed
// one key per allocation. The functions here produce bit-identical values to
// hash/fnv — partitions are unchanged — with zero allocations.
package hash32

import "strconv"

const (
	offset32 = 2166136261
	prime32  = 16777619
)

// Sum returns the FNV-1a 32-bit hash of b, identical to fnv.New32a().
func Sum(b []byte) uint32 {
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// SumString is Sum over a string without converting it to []byte.
func SumString(s string) uint32 {
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// SumInt64Decimal hashes the decimal rendering of v — the bytes
// strconv.FormatInt(v, 10) would produce — without allocating the string.
// It matches the PaPar runtime convention that numbers and the strings they
// parse from hash identically.
func SumInt64Decimal(v int64) uint32 {
	var a [20]byte // len("-9223372036854775808")
	b := strconv.AppendInt(a[:0], v, 10)
	return Sum(b)
}

// Bucket maps a hash onto [0, n), matching the h % uint32(n) convention all
// existing partitioners use.
func Bucket(h uint32, n int) int {
	return int(h % uint32(n))
}
