package hash32

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"testing"
)

// TestMatchesStdlib proves the inlined kernel is bit-identical to hash/fnv —
// the property that keeps every partition byte-stable across the PR.
func TestMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := [][]byte{nil, {}, {0}, []byte("a"), []byte("key-123"), {0xff, 0x00, 0x80}}
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		cases = append(cases, b)
	}
	for _, c := range cases {
		h := fnv.New32a()
		h.Write(c)
		if got, want := Sum(c), h.Sum32(); got != want {
			t.Fatalf("Sum(%q) = %#x, fnv = %#x", c, got, want)
		}
		if got, want := SumString(string(c)), Sum(c); got != want {
			t.Fatalf("SumString(%q) = %#x, Sum = %#x", c, got, want)
		}
	}
}

func TestSumInt64Decimal(t *testing.T) {
	vals := []int64{0, 1, -1, 42, -200, 1 << 40, -(1 << 40), 9223372036854775807, -9223372036854775808}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		vals = append(vals, rng.Int63()-rng.Int63())
	}
	for _, v := range vals {
		want := Sum([]byte(strconv.FormatInt(v, 10)))
		if got := SumInt64Decimal(v); got != want {
			t.Fatalf("SumInt64Decimal(%d) = %#x, want %#x", v, got, want)
		}
	}
}

func TestBucket(t *testing.T) {
	for n := 1; n <= 64; n *= 2 {
		for i := 0; i < 100; i++ {
			h := Sum([]byte(fmt.Sprint(i)))
			b := Bucket(h, n)
			if b < 0 || b >= n {
				t.Fatalf("Bucket(%#x, %d) = %d out of range", h, n, b)
			}
			if b != int(h%uint32(n)) {
				t.Fatalf("Bucket mismatch")
			}
		}
	}
}

func BenchmarkSum(b *testing.B) {
	key := []byte("key-12345678")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Sum(key) == 0 {
			b.Fatal("unexpected zero")
		}
	}
}
