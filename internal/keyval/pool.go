package keyval

import "sync"

// The shuffle allocates the same three shapes over and over: wire/page byte
// buffers, offset indexes, and scatter scratch. Each gets a sync.Pool split
// into power-of-two size classes so a small request never pins a huge
// buffer and a large request never receives a uselessly small one. The
// pools are process-global: in the simulated cluster every rank runs in one
// process, so pages freed by one rank's receiver feed another rank's sender.
const (
	minClassBits = 6  // smallest pooled capacity: 64 elements
	numClasses   = 24 // largest pooled capacity: 64 << 23 = 512Mi elements
)

type slicePool[T any] struct {
	classes [numClasses]sync.Pool
}

// get returns a zero-length slice with capacity >= n.
func (p *slicePool[T]) get(n int) []T {
	c := 0
	for c < numClasses && 1<<(c+minClassBits) < n {
		c++
	}
	if c == numClasses {
		return make([]T, 0, n)
	}
	if v := p.classes[c].Get(); v != nil {
		return (*(v.(*[]T)))[:0]
	}
	return make([]T, 0, 1<<(c+minClassBits))
}

// put recycles s's backing array. Slices below the smallest class are
// dropped; otherwise s lands in the largest class it fully covers, so get
// can always honor the class's capacity promise.
func (p *slicePool[T]) put(s []T) {
	c := cap(s)
	if c < 1<<minClassBits {
		return
	}
	cl := 0
	for cl+1 < numClasses && 1<<(cl+1+minClassBits) <= c {
		cl++
	}
	s = s[:0]
	p.classes[cl].Put(&s)
}

var (
	bufPool slicePool[byte]
	offPool slicePool[uint32]
	idxPool slicePool[int32]
)

// getBuf/putBuf route through the ownership sanitizer when it is enabled
// (see sanitizer.go); only byte buffers carry ownership hazards.
func getBuf(n int) []byte {
	if poolSanitizerOn.Load() {
		return sanGet(n)
	}
	return bufPool.get(n)
}

func putBuf(b []byte) {
	if poolSanitizerOn.Load() {
		sanPut(b)
		return
	}
	bufPool.put(b)
}
func getOff(n int) []uint32 { return offPool.get(n) }
func putOff(o []uint32)     { offPool.put(o) }
func getIdx(n int) []int32  { return idxPool.get(n) }
func putIdx(i []int32)      { idxPool.put(i) }

// Recycle returns a wire buffer (obtained from Encode or read back from a
// simulated disk) to the page pool. Call it exactly once per buffer, only
// after every decoded view of it has been Released.
func Recycle(buf []byte) { putBuf(buf) }

// GetIndex returns a zero-length pooled []int32 with capacity >= n —
// scratch for per-pair destination scatters in the shuffle.
func GetIndex(n int) []int32 { return idxPool.get(n) }

// PutIndex recycles scratch obtained from GetIndex.
func PutIndex(s []int32) { idxPool.put(s) }
