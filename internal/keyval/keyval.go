// Package keyval provides the key-value containers that the MapReduce layer
// (internal/mrmpi) and the PaPar operators exchange.
//
// PaPar formalizes every workflow as a sequence of key-value operations
// (paper §I, §III). A KV holds one key and one value, both opaque byte
// strings; a List is a *page* of KVs whose in-memory layout is the wire
// format itself — one contiguous backing buffer in the shuffle encoding plus
// a compact offsets index — so Encode is a slice hand-off and Decode a
// validated zero-copy view; a KMV groups all values sharing one key, the
// result of MR-MPI's "convert" step.
//
// # Page layout
//
// A List's backing buffer holds exactly the bytes a shuffle would move:
//
//	uint32 count | repeat{ uint32 klen | uint32 vlen | key | value }
//
// The offsets index holds the buffer position of each pair's header, in
// logical order. Appending writes the pair once, at the end of the buffer;
// sorting permutes the 4-byte offsets (via the ASPaS parallel engine), never
// the pair bytes. While offsets remain in buffer order ("unpermuted"),
// Encode patches the count header and returns the backing buffer itself —
// zero copies. After a reordering, Encode rebuilds the wire image once into
// a pooled buffer, the same cost the old per-pair encoder paid always.
//
// # Zero-copy and pooling safety rules
//
//   - KV views returned by At/Key/Value and KMV groups returned by Convert
//     alias the page. They are valid until the List is Released; Add never
//     invalidates them (the buffer only grows).
//   - The buffer returned by Encode aliases the page unless a sort permuted
//     it. It is invalidated by a later Add on the same list, and by Release
//     of a buffer obtained from Recycle's pool. Hand it to the transport or
//     to disk, then either the *consumer* recycles it (shuffle receivers) or
//     nobody does (checkpoint stores, which must own their pages — use
//     AppendEncoded to copy).
//   - Release returns the page's backing to the internal pools. Only call
//     it when no views (KV, KMV, Encode result) are outstanding. Decoded
//     views of wire buffers are Released by the shuffle receiver after
//     merging; lists that escape (mr.KV(), checkpoint restores) are simply
//     dropped for the GC.
package keyval

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/aspas"
	"repro/internal/permute"
)

// KV is one key-value pair. Key and Value are treated as opaque bytes; the
// schema layer (internal/dataformat) gives them structure.
type KV struct {
	Key   []byte
	Value []byte
}

// Clone deep-copies the pair.
func (kv KV) Clone() KV {
	return KV{Key: append([]byte(nil), kv.Key...), Value: append([]byte(nil), kv.Value...)}
}

// Size returns the encoded size of the pair in bytes.
func (kv KV) Size() int { return 8 + len(kv.Key) + len(kv.Value) }

// String renders the pair for debugging.
func (kv KV) String() string { return fmt.Sprintf("{%q: %q}", kv.Key, kv.Value) }

// List is an ordered collection of KV pairs, the unit the shuffle moves
// between ranks. See the package comment for the page layout.
type List struct {
	// buf is the wire image: 4-byte count header + packed pairs. The count
	// bytes are patched by Encode/AppendEncoded; the pair bytes are
	// append-only.
	buf []byte
	// off[i] is the buffer position of pair i's 8-byte header, in logical
	// order.
	off []uint32
	// permuted records that a sort reordered off, so buf is no longer in
	// logical order and Encode must rebuild.
	permuted bool
	// leased records that Encode handed out buf; Release must then leave
	// the buffer to its new owner.
	leased bool
}

// NewList returns an empty list with capacity for n pairs.
func NewList(n int) *List {
	l := &List{}
	if n > 0 {
		l.off = make([]uint32, 0, n)
		l.buf = make([]byte, 4, 4+24*n)
	}
	return l
}

// NewListSized returns an empty list with pooled backing sized for exactly
// npairs pairs and payloadBytes encoded payload bytes (the sum of KV.Size
// over the pairs to come). Use it when a counting pass knows the final size:
// no append ever reallocates.
func NewListSized(npairs, payloadBytes int) *List {
	buf := getBuf(4 + payloadBytes)
	return &List{buf: append(buf, 0, 0, 0, 0), off: getOff(npairs)}
}

func (l *List) ensure() {
	if l.buf == nil {
		l.buf = make([]byte, 4, 68)
	}
}

// Add appends a pair, copying both byte slices into the page.
func (l *List) Add(key, value []byte) {
	l.ensure()
	o := len(l.buf)
	need := 8 + len(key) + len(value)
	if cap(l.buf)-o < need {
		grown := make([]byte, o, max(2*cap(l.buf), o+need))
		copy(grown, l.buf)
		l.buf = grown
	}
	l.buf = l.buf[:o+need]
	rec := l.buf[o:]
	binary.LittleEndian.PutUint32(rec, uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(value)))
	copy(rec[8:], key)
	copy(rec[8+len(key):], value)
	l.off = append(l.off, uint32(o))
}

// AddKV appends an existing pair.
func (l *List) AddKV(kv KV) { l.Add(kv.Key, kv.Value) }

// AppendList appends every pair of m, preserving m's logical order. When m
// is unpermuted this is a single wholesale copy of its payload region.
func (l *List) AppendList(m *List) {
	if m == nil || len(m.off) == 0 {
		return
	}
	l.ensure()
	if !m.permuted {
		base := uint32(len(l.buf)) - 4
		l.buf = append(l.buf, m.buf[4:]...)
		for _, o := range m.off {
			l.off = append(l.off, o+base)
		}
		return
	}
	for _, o := range m.off {
		rec := m.record(o)
		l.off = append(l.off, uint32(len(l.buf)))
		l.buf = append(l.buf, rec...)
	}
}

// Len returns the number of pairs.
func (l *List) Len() int { return len(l.off) }

// Bytes returns the total encoded payload size (what a shuffle would move).
func (l *List) Bytes() int {
	if len(l.buf) < 4 {
		return 0
	}
	return len(l.buf) - 4
}

// pairAt decodes the KV view at header offset o.
func (l *List) pairAt(o uint32) KV {
	k := binary.LittleEndian.Uint32(l.buf[o:])
	v := binary.LittleEndian.Uint32(l.buf[o+4:])
	ks := o + 8
	vs := ks + k
	return KV{Key: l.buf[ks:vs:vs], Value: l.buf[vs : vs+v : vs+v]}
}

// record returns the full encoded record (header + key + value) at offset o.
func (l *List) record(o uint32) []byte {
	k := binary.LittleEndian.Uint32(l.buf[o:])
	v := binary.LittleEndian.Uint32(l.buf[o+4:])
	return l.buf[o : o+8+k+v]
}

// keyAt returns the key bytes of the pair whose header is at offset o.
func (l *List) keyAt(o uint32) []byte {
	k := binary.LittleEndian.Uint32(l.buf[o:])
	return l.buf[o+8 : o+8+k : o+8+k]
}

// At returns a zero-copy view of pair i. The view is valid until Release.
func (l *List) At(i int) KV { return l.pairAt(l.off[i]) }

// Record returns a zero-copy view of pair i's full encoded record (8-byte
// header + key + value) — the exact bytes a wire page carries for the pair.
// Scatter loops use it to move whole records into outbound pages with one
// copy instead of re-encoding key and value separately.
func (l *List) Record(i int) []byte { return l.record(l.off[i]) }

// Key returns a zero-copy view of pair i's key.
func (l *List) Key(i int) []byte { return l.keyAt(l.off[i]) }

// Value returns a zero-copy view of pair i's value.
func (l *List) Value(i int) []byte {
	o := l.off[i]
	k := binary.LittleEndian.Uint32(l.buf[o:])
	v := binary.LittleEndian.Uint32(l.buf[o+4:])
	vs := o + 8 + k
	return l.buf[vs : vs+v : vs+v]
}

// markPermuted rescans the offsets for monotonicity so an order-preserving
// sort (already-sorted data) keeps the zero-copy Encode path.
func (l *List) markPermuted() {
	for i := 1; i < len(l.off); i++ {
		if l.off[i] < l.off[i-1] {
			l.permuted = true
			return
		}
	}
	l.permuted = false
}

// Sort orders the pairs by key (bytewise), with the original order preserved
// among equal keys (stable), matching the reducer-visible ordering the
// paper's sort job produces. Only the 4-byte offsets move — never the pair
// bytes. When every key has the same width (encoded sequence lengths, vertex
// ids, bucket numbers — PaPar's common case) the offsets are permuted by a
// stable LSD radix sort over the key bytes; for equal-width keys that order
// is exactly bytes.Compare order, so the output is byte-identical to the
// comparison path, which variable-width keys still take through the ASPaS
// parallel engine.
func (l *List) Sort() {
	if w, ok := l.fixedKeyWidth(); ok && len(l.off) >= aspas.RadixMinKeys && w > 0 {
		l.sortFixedRadix(w)
		l.markPermuted()
		return
	}
	aspas.SortStable(l.off, func(a, b uint32) bool {
		return bytes.Compare(l.keyAt(a), l.keyAt(b)) < 0
	})
	l.markPermuted()
}

// fixedKeyWidth reports whether every key in the list has the same byte
// width, and that width. One uint32 load per pair — noise next to the sort
// it enables.
func (l *List) fixedKeyWidth() (int, bool) {
	if len(l.off) == 0 {
		return 0, false
	}
	w := binary.LittleEndian.Uint32(l.buf[l.off[0]:])
	for _, o := range l.off[1:] {
		if binary.LittleEndian.Uint32(l.buf[o:]) != w {
			return 0, false
		}
	}
	return int(w), true
}

// sortFixedRadix sorts the offsets by key through the aspas radix kernel:
// keys are gathered once into pooled contiguous scratch (the radix passes
// walk it sequentially instead of chasing page offsets), the kernel returns
// a stable permutation, and the offsets move once through permute.GatherInto
// — the same offset-permuting machinery the distribution matrices use.
func (l *List) sortFixedRadix(w int) {
	n := len(l.off)
	kbuf := getBuf(n * w)[:n*w]
	for i, o := range l.off {
		copy(kbuf[i*w:(i+1)*w], l.keyAt(o))
	}
	perm := aspas.SortPermFixedBytes(kbuf, w)
	sorted := getOff(n)[:n]
	permute.GatherInto(sorted, l.off, perm)
	putBuf(kbuf)
	putOff(l.off)
	l.off = sorted
}

// SortFunc orders the pairs by the provided comparison (stable).
func (l *List) SortFunc(less func(a, b KV) bool) {
	aspas.SortStable(l.off, func(a, b uint32) bool {
		return less(l.pairAt(a), l.pairAt(b))
	})
	l.markPermuted()
}

// EncodedSize returns len(Encode()) without encoding, including the
// integrity trailer when page CRC mode is on.
func (l *List) EncodedSize() int { return 4 + l.Bytes() + trailerLen() }

// Encode frames the list into a single wire buffer:
//
//	uint32 count | repeat{ uint32 klen | uint32 vlen | key | value }
//
// For an unpermuted page this is a zero-copy hand-off of the backing buffer
// (the count header is patched in place); the result is invalidated by a
// later Add. A permuted page is rebuilt once into a pooled buffer.
func (l *List) Encode() []byte {
	crc := pageCRCOn.Load()
	if len(l.off) == 0 {
		out := make([]byte, 4, 4+trailerLen())
		if crc {
			out = sealPage(out)
		}
		return out
	}
	if !l.permuted {
		binary.LittleEndian.PutUint32(l.buf[:4], uint32(len(l.off)))
		if !crc {
			l.leased = true
			return l.buf
		}
		if cap(l.buf)-len(l.buf) >= trailerSize {
			// Room for the trailer in the backing buffer: still zero-copy.
			l.leased = true
			return sealPage(l.buf)
		}
		// No spare capacity: seal into a pooled copy and keep the page's own
		// backing (the list is not leased).
		return sealPage(append(getBuf(l.EncodedSize()), l.buf...))
	}
	out := getBuf(l.EncodedSize())
	out = binary.LittleEndian.AppendUint32(out, uint32(len(l.off)))
	for _, o := range l.off {
		out = append(out, l.record(o)...)
	}
	if crc {
		out = sealPage(out)
	}
	return out
}

// AppendEncoded appends the wire image to dst and returns it. Unlike Encode
// the pair bytes are always copied, so the result shares nothing with the
// page — the form checkpoint stores require.
func (l *List) AppendEncoded(dst []byte) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(l.off)))
	if !l.permuted {
		if len(l.buf) > 4 {
			dst = append(dst, l.buf[4:]...)
		}
	} else {
		for _, o := range l.off {
			dst = append(dst, l.record(o)...)
		}
	}
	if pageCRCOn.Load() {
		// The trailer covers this page's image only, not whatever the caller
		// already had in dst (checkpoint snapshots prepend a flag byte).
		sum := crc32.Checksum(dst[start:], castagnoli)
		dst = binary.LittleEndian.AppendUint32(dst, pageMagic)
		dst = binary.LittleEndian.AppendUint32(dst, sum)
	}
	return dst
}

// AppendRecords appends the list's raw encoded records (no count header, no
// trailer) to dst, preserving logical order. It is the streaming counterpart
// of AppendEncoded: callers assembling one page from several lists (e.g. a
// checkpoint snapshot of spilled runs plus the hot list) append each list's
// records and seal the result once with FinishPage.
func (l *List) AppendRecords(dst []byte) []byte {
	if !l.permuted {
		if len(l.buf) > 4 {
			dst = append(dst, l.buf[4:]...)
		}
		return dst
	}
	for _, o := range l.off {
		dst = append(dst, l.record(o)...)
	}
	return dst
}

// Release returns the page's backing to the internal pools. The list is
// empty and reusable afterwards. Callers must guarantee no views obtained
// from At/Key/Value/Convert/Encode are still live; see the package comment
// for who may call it.
func (l *List) Release() {
	if l.buf != nil && !l.leased {
		putBuf(l.buf)
	}
	if l.off != nil {
		putOff(l.off)
	}
	l.buf, l.off, l.permuted, l.leased = nil, nil, false, false
}

// Decode parses a buffer produced by Encode. The returned list is a
// validated zero-copy view: it aliases buf and allocates only the offsets
// index (from the pool).
func Decode(buf []byte) (*List, error) {
	if pageCRCOn.Load() {
		// Verify the trailer before trusting a single header, then walk the
		// stripped body exactly as in trailer-less mode. The returned list's
		// buf excludes the trailer (same backing array), so Bytes() and
		// AppendList's wholesale-copy path see only pair bytes.
		body, err := verifyPage(buf)
		if err != nil {
			return nil, err
		}
		buf = body
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("keyval: short buffer (%d bytes)", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf)
	// The count is untrusted wire data: cap the preallocation so a corrupt
	// header cannot demand gigabytes.
	prealloc := int(n)
	if prealloc > 4096 {
		prealloc = 4096
	}
	off := getOff(prealloc)
	pos := uint64(4)
	total := uint64(len(buf))
	for i := uint32(0); i < n; i++ {
		if total-pos < 8 {
			putOff(off)
			return nil, fmt.Errorf("keyval: truncated header at pair %d", i)
		}
		k := binary.LittleEndian.Uint32(buf[pos:])
		v := binary.LittleEndian.Uint32(buf[pos+4:])
		rec := 8 + uint64(k) + uint64(v)
		if total-pos < rec {
			putOff(off)
			return nil, fmt.Errorf("keyval: truncated payload at pair %d", i)
		}
		off = append(off, uint32(pos))
		pos += rec
	}
	if pos != total {
		putOff(off)
		return nil, fmt.Errorf("keyval: %d trailing bytes after %d pairs", total-pos, n)
	}
	return &List{buf: buf, off: off}, nil
}

// DecodeCopy is Decode into an owned (pooled) backing buffer — for callers
// that must not retain a view of foreign memory, like checkpoint restores.
func DecodeCopy(buf []byte) (*List, error) {
	cp := append(getBuf(len(buf)), buf...)
	l, err := Decode(cp)
	if err != nil {
		putBuf(cp)
		return nil, err
	}
	return l, nil
}

// KMV is a key with all the values that shared it — the convert (KV→KMV)
// output that reducers consume. Key and Values alias the source page.
type KMV struct {
	Key    []byte
	Values [][]byte
}

// NumValues returns the multiplicity of the key.
func (k KMV) NumValues() int { return len(k.Values) }

// Bytes returns the payload size of the group.
func (k KMV) Bytes() int {
	n := len(k.Key)
	for _, v := range k.Values {
		n += len(v)
	}
	return n
}

// Convert groups a list's pairs by key, preserving first-appearance key
// order and per-key value order (both matter for deterministic reducers).
//
// The grouper is allocation-lean: it detects already-grouped input (keys
// non-decreasing, the post-sort common case) and emits runs directly;
// otherwise it stable-sorts a pooled index array by key and reorders the
// groups back to first-appearance order. All Values sub-slices share one
// arena allocation; no per-key map or string conversion is involved.
func Convert(l *List) []KMV {
	n := l.Len()
	if n == 0 {
		return nil
	}
	nondecr := true
	for i := 1; i < n; i++ {
		if bytes.Compare(l.Key(i-1), l.Key(i)) > 0 {
			nondecr = false
			break
		}
	}
	arena := make([][]byte, n)
	if nondecr {
		runs := 1
		for i := 1; i < n; i++ {
			if !bytes.Equal(l.Key(i), l.Key(i-1)) {
				runs++
			}
		}
		out := make([]KMV, 0, runs)
		start := 0
		for i := 1; i <= n; i++ {
			if i < n && bytes.Equal(l.Key(i), l.Key(start)) {
				continue
			}
			for j := start; j < i; j++ {
				arena[j] = l.Value(j)
			}
			out = append(out, KMV{Key: l.Key(start), Values: arena[start:i:i]})
			start = i
		}
		return out
	}
	// General path: a counting scatter. Pass 1 assigns group ids in
	// first-appearance order and counts multiplicities (the map lookup on
	// string(key) does not allocate; only the one insert per distinct key
	// does). Pass 2 carves the arena per group and scatters values in
	// original order — both orderings the naive map grouper guaranteed.
	ids := getIdx(n)
	index := make(map[string]int32, 64)
	var counts, first []int32
	for i := 0; i < n; i++ {
		k := l.Key(i)
		id, ok := index[string(k)]
		if !ok {
			id = int32(len(counts))
			index[string(k)] = id
			counts = append(counts, 0)
			first = append(first, int32(i))
		}
		counts[id]++
		ids = append(ids, id)
	}
	out := make([]KMV, len(counts))
	pos := int32(0)
	for g := range out {
		out[g] = KMV{Key: l.Key(int(first[g])), Values: arena[pos : pos : pos+counts[g]]}
		pos += counts[g]
	}
	for i := 0; i < n; i++ {
		g := ids[i]
		out[g].Values = append(out[g].Values, l.Value(i))
	}
	putIdx(ids)
	return out
}

// Flatten is the inverse of Convert: it expands groups back into a flat
// list, preserving order.
func Flatten(groups []KMV) *List {
	n, payload := 0, 0
	for _, g := range groups {
		n += len(g.Values)
		for _, v := range g.Values {
			payload += 8 + len(g.Key) + len(v)
		}
	}
	l := &List{buf: make([]byte, 4, 4+payload), off: make([]uint32, 0, n)}
	for _, g := range groups {
		for _, v := range g.Values {
			l.Add(g.Key, v)
		}
	}
	return l
}
