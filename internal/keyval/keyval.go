// Package keyval provides the key-value containers that the MapReduce layer
// (internal/mrmpi) and the PaPar operators exchange.
//
// PaPar formalizes every workflow as a sequence of key-value operations
// (paper §I, §III). A KV holds one key and one value, both opaque byte
// strings; a List is an appendable page of KVs with a compact binary wire
// encoding used for shuffles; a KMV groups all values sharing one key, the
// result of MR-MPI's "convert" step.
package keyval

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// KV is one key-value pair. Key and Value are treated as opaque bytes; the
// schema layer (internal/dataformat) gives them structure.
type KV struct {
	Key   []byte
	Value []byte
}

// Clone deep-copies the pair.
func (kv KV) Clone() KV {
	return KV{Key: append([]byte(nil), kv.Key...), Value: append([]byte(nil), kv.Value...)}
}

// Size returns the encoded size of the pair in bytes.
func (kv KV) Size() int { return 8 + len(kv.Key) + len(kv.Value) }

// String renders the pair for debugging.
func (kv KV) String() string { return fmt.Sprintf("{%q: %q}", kv.Key, kv.Value) }

// List is an ordered collection of KV pairs, the unit the shuffle moves
// between ranks.
type List struct {
	Pairs []KV
	bytes int
}

// NewList returns an empty list with capacity for n pairs.
func NewList(n int) *List { return &List{Pairs: make([]KV, 0, n)} }

// Add appends a pair. The byte slices are retained, not copied.
func (l *List) Add(key, value []byte) {
	l.Pairs = append(l.Pairs, KV{Key: key, Value: value})
	l.bytes += 8 + len(key) + len(value)
}

// AddKV appends an existing pair.
func (l *List) AddKV(kv KV) { l.Add(kv.Key, kv.Value) }

// Len returns the number of pairs.
func (l *List) Len() int { return len(l.Pairs) }

// Bytes returns the total encoded payload size (what a shuffle would move).
func (l *List) Bytes() int { return l.bytes }

// Sort orders the pairs by key (bytewise), with the original order preserved
// among equal keys (stable), matching the reducer-visible ordering the
// paper's sort job produces.
func (l *List) Sort() {
	sort.SliceStable(l.Pairs, func(i, j int) bool {
		return bytes.Compare(l.Pairs[i].Key, l.Pairs[j].Key) < 0
	})
}

// SortFunc orders the pairs by the provided comparison (stable).
func (l *List) SortFunc(less func(a, b KV) bool) {
	sort.SliceStable(l.Pairs, func(i, j int) bool { return less(l.Pairs[i], l.Pairs[j]) })
}

// Encode frames the list into a single buffer:
//
//	uint32 count | repeat{ uint32 klen | uint32 vlen | key | value }
func (l *List) Encode() []byte {
	out := make([]byte, 0, 4+l.bytes)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(l.Pairs)))
	for _, kv := range l.Pairs {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(kv.Key)))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(kv.Value)))
		out = append(out, kv.Key...)
		out = append(out, kv.Value...)
	}
	return out
}

// Decode parses a buffer produced by Encode. The returned list aliases buf.
func Decode(buf []byte) (*List, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("keyval: short buffer (%d bytes)", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	// The count is untrusted wire data: cap the preallocation so a corrupt
	// header cannot demand gigabytes.
	prealloc := int(n)
	if prealloc > 4096 {
		prealloc = 4096
	}
	l := NewList(prealloc)
	for i := uint32(0); i < n; i++ {
		if len(buf) < 8 {
			return nil, fmt.Errorf("keyval: truncated header at pair %d", i)
		}
		klen := binary.LittleEndian.Uint32(buf)
		vlen := binary.LittleEndian.Uint32(buf[4:])
		buf = buf[8:]
		if uint64(len(buf)) < uint64(klen)+uint64(vlen) {
			return nil, fmt.Errorf("keyval: truncated payload at pair %d", i)
		}
		key := buf[:klen:klen]
		value := buf[klen : klen+vlen : klen+vlen]
		buf = buf[klen+vlen:]
		l.Add(key, value)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("keyval: %d trailing bytes after %d pairs", len(buf), n)
	}
	return l, nil
}

// KMV is a key with all the values that shared it — the convert (KV→KMV)
// output that reducers consume.
type KMV struct {
	Key    []byte
	Values [][]byte
}

// NumValues returns the multiplicity of the key.
func (k KMV) NumValues() int { return len(k.Values) }

// Bytes returns the payload size of the group.
func (k KMV) Bytes() int {
	n := len(k.Key)
	for _, v := range k.Values {
		n += len(v)
	}
	return n
}

// Convert groups a list's pairs by key, preserving first-appearance key
// order and per-key value order (both matter for deterministic reducers).
func Convert(l *List) []KMV {
	idx := make(map[string]int, len(l.Pairs))
	var out []KMV
	for _, kv := range l.Pairs {
		k := string(kv.Key)
		if i, ok := idx[k]; ok {
			out[i].Values = append(out[i].Values, kv.Value)
			continue
		}
		idx[k] = len(out)
		out = append(out, KMV{Key: kv.Key, Values: [][]byte{kv.Value}})
	}
	return out
}

// Flatten is the inverse of Convert: it expands groups back into a flat
// list, preserving order.
func Flatten(groups []KMV) *List {
	n := 0
	for _, g := range groups {
		n += len(g.Values)
	}
	l := NewList(n)
	for _, g := range groups {
		for _, v := range g.Values {
			l.Add(g.Key, v)
		}
	}
	return l
}
