package keyval

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"
)

// Page integrity trailer.
//
// When enabled (PAPAR_PAGE_CRC=1, or SetPageCRC), every wire image produced
// by Encode/AppendEncoded carries an 8-byte trailer after the last pair:
//
//	uint32 magic | uint32 crc32c(page bytes before the trailer)
//
// and Decode/DecodeCopy verify the trailer before walking a single header,
// returning a typed *IntegrityError on any mismatch. This is end-to-end
// protection in the SECDED sense: the checksum is computed where the page is
// born (the sender's encode) and checked where it is consumed (the
// receiver's decode, or a checkpoint restore), so it catches corruption the
// transport's link-level envelope cannot — damage that happens while the
// page sits in host memory, e.g. a pooled buffer recycled while still
// referenced.
//
// The trailer is off by default because it adds 8 bytes to every page and
// therefore perturbs simulated transfer times; fault-free runs stay
// bit-identical to the pre-trailer system. The chaos harness and the
// integrity tests switch it on for both the reference and the faulted run,
// so their comparison stays apples-to-apples.

const (
	// pageMagic marks a sealed page; "PGCR" little-endian. A corrupted or
	// truncated trailer is overwhelmingly likely to break the magic before
	// the checksum even gets a say.
	pageMagic   = 0x52434750
	trailerSize = 8
)

// castagnoli is the CRC32C polynomial table (detects all single-bit errors
// and all burst errors shorter than 32 bits).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// pageCRCOn gates the trailer. Atomic so tests can flip it without racing
// concurrent encoders.
var pageCRCOn atomic.Bool

func init() {
	if v := os.Getenv("PAPAR_PAGE_CRC"); v != "" && v != "0" && v != "false" {
		pageCRCOn.Store(true)
	}
}

// PageCRCEnabled reports whether pages are sealed and verified.
func PageCRCEnabled() bool { return pageCRCOn.Load() }

// SetPageCRC switches page sealing on or off and returns the previous
// setting. Flip it only between runs: pages sealed in one mode do not decode
// in the other.
func SetPageCRC(on bool) (prev bool) { return pageCRCOn.Swap(on) }

// trailerLen returns the per-page framing overhead in the current mode.
func trailerLen() int {
	if pageCRCOn.Load() {
		return trailerSize
	}
	return 0
}

// sealPage appends the integrity trailer covering all of page.
func sealPage(page []byte) []byte {
	sum := crc32.Checksum(page, castagnoli)
	page = binary.LittleEndian.AppendUint32(page, pageMagic)
	return binary.LittleEndian.AppendUint32(page, sum)
}

// FinishPage seals a page image assembled from AppendRecords calls: dst
// must hold a 4-byte count placeholder at `start` followed by the appended
// records. The count is patched in, and in CRC mode the integrity trailer is
// appended covering dst[start:] — exactly what AppendEncoded would have
// produced had the records come from one list.
func FinishPage(dst []byte, start, count int) []byte {
	binary.LittleEndian.PutUint32(dst[start:], uint32(count))
	if pageCRCOn.Load() {
		sum := crc32.Checksum(dst[start:], castagnoli)
		dst = binary.LittleEndian.AppendUint32(dst, pageMagic)
		dst = binary.LittleEndian.AppendUint32(dst, sum)
	}
	return dst
}

// VerifySealedPage checks an arbitrary sealed page image's integrity
// trailer (when page CRC mode is on) and returns the body with the trailer
// stripped; in trailer-less mode the buffer passes through unchanged. It is
// the verification half of FinishPage for consumers whose page body is not
// the KV record format — e.g. the shuffle codec's compressed pages.
func VerifySealedPage(buf []byte) ([]byte, error) {
	if !pageCRCOn.Load() {
		return buf, nil
	}
	return verifyPage(buf)
}

// IntegrityError reports a page that failed trailer verification: the bytes
// differ from what the encoder sealed. It is a data-corruption diagnosis,
// not a recoverable condition — callers surface it, they do not retry.
type IntegrityError struct {
	// Len is the length of the rejected page.
	Len int
	// Reason says which part of the verification failed.
	Reason string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("keyval: page integrity failure: %s (%d-byte page)", e.Reason, e.Len)
}

// verifyPage checks buf's trailer and returns the page body with the
// trailer stripped.
func verifyPage(buf []byte) ([]byte, error) {
	if len(buf) < 4+trailerSize {
		return nil, &IntegrityError{Len: len(buf), Reason: "missing trailer"}
	}
	body := buf[:len(buf)-trailerSize]
	tr := buf[len(buf)-trailerSize:]
	if binary.LittleEndian.Uint32(tr) != pageMagic {
		return nil, &IntegrityError{Len: len(buf), Reason: "bad trailer magic"}
	}
	if binary.LittleEndian.Uint32(tr[4:]) != crc32.Checksum(body, castagnoli) {
		return nil, &IntegrityError{Len: len(buf), Reason: "checksum mismatch"}
	}
	return body, nil
}
