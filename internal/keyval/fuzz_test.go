package keyval

import (
	"bytes"
	"testing"
)

func FuzzDecode(f *testing.F) {
	l := NewList(0)
	l.Add([]byte("key"), []byte("value"))
	l.Add(nil, nil)
	f.Add(l.Encode())
	f.Add([]byte{})
	f.Add([]byte{9, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		// Valid lists round-trip byte-exactly.
		if !bytes.Equal(got.Encode(), data) {
			t.Fatalf("re-encode differs from accepted input")
		}
	})
}
