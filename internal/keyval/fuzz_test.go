package keyval

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func FuzzDecode(f *testing.F) {
	l := NewList(0)
	l.Add([]byte("key"), []byte("value"))
	l.Add(nil, nil)
	f.Add(l.Encode())
	f.Add([]byte{})
	f.Add([]byte{9, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		// Valid lists round-trip byte-exactly.
		if !bytes.Equal(got.Encode(), data) {
			t.Fatalf("re-encode differs from accepted input")
		}
	})
}

// FuzzPageOps drives the page through the operations a shuffle performs —
// build, sort, encode, decode, append — from fuzzer-chosen pair boundaries,
// and checks every invariant the zero-copy design relies on.
func FuzzPageOps(f *testing.F) {
	f.Add([]byte("abcdefgh"), []byte{2, 3}, false)
	f.Add([]byte("keyvaluekeyvalue"), []byte{3, 5, 3, 5}, true)
	f.Add([]byte{}, []byte{}, false)
	f.Fuzz(func(t *testing.T, payload []byte, cuts []byte, doSort bool) {
		// Interpret cuts pairwise as (klen, vlen) slices out of payload.
		l := NewList(0)
		var want [][2][]byte
		pos := 0
		for i := 0; i+1 < len(cuts); i += 2 {
			k := int(cuts[i])
			v := int(cuts[i+1])
			if pos+k+v > len(payload) {
				break
			}
			key := payload[pos : pos+k]
			val := payload[pos+k : pos+k+v]
			l.Add(key, val)
			want = append(want, [2][]byte{key, val})
			pos += k + v
		}
		if l.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", l.Len(), len(want))
		}
		if doSort {
			l.Sort()
			// Track the same stable reordering on the reference slice.
			stableSortRef(want)
		}
		for i := range want {
			if !bytes.Equal(l.Key(i), want[i][0]) || !bytes.Equal(l.Value(i), want[i][1]) {
				t.Fatalf("pair %d: got (%q,%q) want (%q,%q)", i, l.Key(i), l.Value(i), want[i][0], want[i][1])
			}
		}
		enc := l.Encode()
		if n := binary.LittleEndian.Uint32(enc); int(n) != len(want) {
			t.Fatalf("encoded count %d, want %d", n, len(want))
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode()) failed: %v", err)
		}
		if dec.Len() != len(want) || dec.Bytes() != l.Bytes() {
			t.Fatalf("decode shape mismatch")
		}
		merged := NewList(0)
		merged.AppendList(dec)
		merged.AppendList(l)
		if merged.Len() != 2*len(want) {
			t.Fatalf("AppendList lost pairs")
		}
		for i := range want {
			a, b := merged.At(i), merged.At(i+len(want))
			if !bytes.Equal(a.Key, want[i][0]) || !bytes.Equal(b.Key, want[i][0]) ||
				!bytes.Equal(a.Value, want[i][1]) || !bytes.Equal(b.Value, want[i][1]) {
				t.Fatalf("merged pair %d diverged", i)
			}
		}
	})
}

// stableSortRef mirrors List.Sort (stable, bytewise key order) on a plain
// pair slice.
func stableSortRef(p [][2][]byte) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && bytes.Compare(p[j-1][0], p[j][0]) > 0; j-- {
			p[j-1], p[j] = p[j], p[j-1]
		}
	}
}
