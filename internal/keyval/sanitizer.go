package keyval

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Pool-ownership sanitizer.
//
// The zero-copy page design trades safety for speed: Encode hands out a
// list's backing buffer, Decode returns aliasing views, and Release/Recycle
// feed the shared pools. Every rule in the package comment ("call Recycle
// exactly once", "only Release when no views are outstanding") is enforced
// by nothing at all in normal operation — a violation shows up far away, as
// a page whose bytes changed while another rank was reading it.
//
// The sanitizer (PAPAR_POOL_SANITIZER=1, or SetPoolSanitizer) turns those
// rules into immediate, attributable panics, ASAN-style:
//
//   - get: buffers are always freshly allocated (never from sync.Pool) and
//     tracked as live.
//   - put: the buffer is checked against the quarantine (a second put of the
//     same backing array is a DOUBLE RELEASE), poison-filled, and moved to a
//     bounded quarantine instead of the pool — so no later lease can alias
//     it, and any write through a stale view lands in poison.
//   - verify (PoolSanitizerCheck, also run on quarantine eviction and on
//     disable): a quarantined buffer whose poison was overwritten is a USE
//     AFTER RELEASE.
//   - leaks: PoolSanitizerLive reports buffers leased from the pool and
//     never returned. Dropping a list for the GC is legal in normal runs, so
//     leak counting is a query, not a panic — tests assert it at points
//     where everything should be balanced.
//
// Only byte buffers (pages/wire images) are sanitized; offset and index
// slices never cross ownership boundaries. The sanitizer holds strong
// references to quarantined buffers, so backing-array addresses cannot be
// recycled by the GC and re-trip the double-release check. It costs
// allocation rate and memory — it is a debugging mode, not a fast path.

const (
	poisonByte = 0xDB
	// maxQuarantine bounds the strong references held; the oldest entry is
	// poison-verified and then surrendered to the GC when the bound is hit.
	maxQuarantine = 1024
)

var poolSanitizerOn atomic.Bool

func init() {
	if v := os.Getenv("PAPAR_POOL_SANITIZER"); v != "" && v != "0" && v != "false" {
		poolSanitizerOn.Store(true)
	}
}

// PoolSanitizerEnabled reports whether buffer ownership is being tracked.
func PoolSanitizerEnabled() bool { return poolSanitizerOn.Load() }

// SetPoolSanitizer switches the sanitizer on or off and returns the previous
// setting. Enabling resets all tracking state; disabling verifies the
// quarantine one last time and drops it.
func SetPoolSanitizer(on bool) (prev bool) {
	san.mu.Lock()
	prev = poolSanitizerOn.Load()
	if on {
		san.live = map[*byte][]byte{}
		san.quarIdx = map[*byte]int{}
		san.quar = nil
	} else if prev {
		for _, q := range san.quar {
			san.verifyPoison(q)
		}
		san.live, san.quarIdx, san.quar = nil, nil, nil
	}
	poolSanitizerOn.Store(on)
	san.mu.Unlock()
	return prev
}

var san sanitizer

type sanitizer struct {
	mu sync.Mutex
	// live maps backing-array pointer -> the buffer, for every buffer leased
	// by getBuf and not yet released.
	live map[*byte][]byte
	// quar holds released, poison-filled buffers (strong refs, FIFO);
	// quarIdx indexes their backing pointers for the double-release check.
	quar    [][]byte
	quarIdx map[*byte]int
}

// key returns the identity of a buffer: its backing-array pointer. Two
// slices of the same allocation starting at offset 0 share a key.
func sanKey(b []byte) *byte { return unsafe.SliceData(b[:cap(b)]) }

// sanGet allocates a fresh tracked buffer (sanitizer-on replacement for the
// pooled get).
func sanGet(n int) []byte {
	b := make([]byte, 0, n)
	if cap(b) == 0 {
		return b
	}
	k := sanKey(b)
	san.mu.Lock()
	if san.live != nil {
		san.live[k] = b[:cap(b)]
	}
	san.mu.Unlock()
	return b
}

// sanPut checks and quarantines a released buffer (sanitizer-on replacement
// for the pooled put).
func sanPut(b []byte) {
	if cap(b) == 0 {
		return
	}
	k := sanKey(b)
	full := b[:cap(b)]
	san.mu.Lock()
	defer san.mu.Unlock()
	if san.quarIdx == nil {
		return
	}
	if _, dup := san.quarIdx[k]; dup {
		panic(fmt.Sprintf("keyval: pool sanitizer: double release of %d-byte buffer (already in quarantine)", cap(b)))
	}
	delete(san.live, k)
	for i := range full {
		full[i] = poisonByte
	}
	san.quarIdx[k] = len(san.quar)
	san.quar = append(san.quar, full)
	if len(san.quar) > maxQuarantine {
		old := san.quar[0]
		san.verifyPoison(old)
		delete(san.quarIdx, sanKey(old))
		san.quar = san.quar[1:]
		for kk, i := range san.quarIdx {
			san.quarIdx[kk] = i - 1
		}
	}
}

// verifyPoison panics if a quarantined buffer was written after release.
// Callers hold san.mu.
func (s *sanitizer) verifyPoison(b []byte) {
	for i, c := range b {
		if c != poisonByte {
			panic(fmt.Sprintf("keyval: pool sanitizer: use after release — byte %d of a released %d-byte buffer was overwritten (0x%02x)", i, len(b), c))
		}
	}
}

// PoolSanitizerCheck verifies every quarantined buffer still holds its
// poison fill, panicking with a use-after-release diagnostic otherwise.
func PoolSanitizerCheck() {
	san.mu.Lock()
	defer san.mu.Unlock()
	for _, q := range san.quar {
		san.verifyPoison(q)
	}
}

// PoolSanitizerLive returns how many pool-leased buffers have not been
// released — the leak count at a point where the caller expects balance.
func PoolSanitizerLive() int {
	san.mu.Lock()
	defer san.mu.Unlock()
	return len(san.live)
}
