package keyval

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestKVCloneIndependent(t *testing.T) {
	orig := KV{Key: []byte("k"), Value: []byte("v")}
	c := orig.Clone()
	c.Key[0] = 'X'
	c.Value[0] = 'Y'
	if orig.Key[0] != 'k' || orig.Value[0] != 'v' {
		t.Fatalf("Clone shares storage with original")
	}
}

func TestKVSize(t *testing.T) {
	kv := KV{Key: []byte("abc"), Value: []byte("defg")}
	if got := kv.Size(); got != 8+3+4 {
		t.Fatalf("Size = %d, want 15", got)
	}
}

func TestListAddAndBytes(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("a"), []byte("bb"))
	l.Add([]byte("cc"), []byte("d"))
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if want := 2*8 + 1 + 2 + 2 + 1; l.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", l.Bytes(), want)
	}
}

func TestListSortStable(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("b"), []byte("1"))
	l.Add([]byte("a"), []byte("2"))
	l.Add([]byte("b"), []byte("3"))
	l.Add([]byte("a"), []byte("4"))
	l.Sort()
	var got []string
	for _, kv := range l.Pairs {
		got = append(got, string(kv.Key)+string(kv.Value))
	}
	want := []string{"a2", "a4", "b1", "b3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sort order %v, want %v", got, want)
	}
}

func TestListSortFunc(t *testing.T) {
	l := NewList(0)
	for _, s := range []string{"bbb", "a", "cc"} {
		l.Add([]byte(s), nil)
	}
	l.SortFunc(func(a, b KV) bool { return len(a.Key) > len(b.Key) })
	if string(l.Pairs[0].Key) != "bbb" || string(l.Pairs[2].Key) != "a" {
		t.Fatalf("SortFunc order wrong: %v", l.Pairs)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("key1"), []byte("value1"))
	l.Add(nil, nil) // empty key and value are legal
	l.Add([]byte{0, 1, 2, 255}, bytes.Repeat([]byte("x"), 1000))
	got, err := Decode(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("decoded %d pairs, want %d", got.Len(), l.Len())
	}
	for i := range l.Pairs {
		if !bytes.Equal(got.Pairs[i].Key, l.Pairs[i].Key) ||
			!bytes.Equal(got.Pairs[i].Value, l.Pairs[i].Value) {
			t.Errorf("pair %d mismatch: %v vs %v", i, got.Pairs[i], l.Pairs[i])
		}
	}
	if got.Bytes() != l.Bytes() {
		t.Errorf("decoded Bytes = %d, want %d", got.Bytes(), l.Bytes())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":             nil,
		"short":             {1, 2, 3},
		"truncated header":  {1, 0, 0, 0, 5, 0},
		"truncated payload": {1, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 'a'},
		"trailing garbage":  append(NewList(0).Encode(), 0xFF),
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: Decode succeeded, want error", name)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(pairs [][2][]byte) bool {
		l := NewList(len(pairs))
		for _, p := range pairs {
			l.Add(p[0], p[1])
		}
		got, err := Decode(l.Encode())
		if err != nil || got.Len() != l.Len() {
			return false
		}
		for i := range l.Pairs {
			if !bytes.Equal(got.Pairs[i].Key, l.Pairs[i].Key) ||
				!bytes.Equal(got.Pairs[i].Value, l.Pairs[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvertGroupsAndOrder(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("x"), []byte("1"))
	l.Add([]byte("y"), []byte("2"))
	l.Add([]byte("x"), []byte("3"))
	groups := Convert(l)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if string(groups[0].Key) != "x" || groups[0].NumValues() != 2 {
		t.Fatalf("group 0 = %q x%d", groups[0].Key, groups[0].NumValues())
	}
	if string(groups[0].Values[0]) != "1" || string(groups[0].Values[1]) != "3" {
		t.Fatalf("per-key value order not preserved: %v", groups[0].Values)
	}
	if string(groups[1].Key) != "y" {
		t.Fatalf("first-appearance key order not preserved")
	}
}

func TestConvertEmpty(t *testing.T) {
	if groups := Convert(NewList(0)); len(groups) != 0 {
		t.Fatalf("Convert(empty) = %d groups", len(groups))
	}
}

func TestKMVBytes(t *testing.T) {
	g := KMV{Key: []byte("ab"), Values: [][]byte{[]byte("c"), []byte("de")}}
	if got := g.Bytes(); got != 5 {
		t.Fatalf("Bytes = %d, want 5", got)
	}
}

func TestFlattenInverseOfConvert(t *testing.T) {
	l := NewList(0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		l.Add([]byte(fmt.Sprintf("k%d", rng.Intn(20))), []byte(fmt.Sprintf("v%d", i)))
	}
	flat := Flatten(Convert(l))
	if flat.Len() != l.Len() {
		t.Fatalf("Flatten lost pairs: %d vs %d", flat.Len(), l.Len())
	}
	// Convert groups by key; Flatten keeps all pairs, and sorting both by
	// (key,value) must produce identical multisets.
	canon := func(l *List) []string {
		out := make([]string, 0, l.Len())
		for _, kv := range l.Pairs {
			out = append(out, string(kv.Key)+"\x00"+string(kv.Value))
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(canon(flat), canon(l)) {
		t.Fatalf("Flatten(Convert(l)) is not a permutation of l")
	}
}

func TestConvertFlattenProperty(t *testing.T) {
	f := func(keys []uint8, vals []uint8) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		l := NewList(n)
		for i := 0; i < n; i++ {
			l.Add([]byte{keys[i] % 8}, []byte{vals[i]})
		}
		flat := Flatten(Convert(l))
		if flat.Len() != l.Len() {
			return false
		}
		// Per-key subsequences must be preserved exactly.
		perKey := func(l *List) map[string][]byte {
			m := map[string][]byte{}
			for _, kv := range l.Pairs {
				m[string(kv.Key)] = append(m[string(kv.Key)], kv.Value...)
			}
			return m
		}
		a, b := perKey(l), perKey(flat)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if !bytes.Equal(v, b[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
