package keyval

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestKVCloneIndependent(t *testing.T) {
	orig := KV{Key: []byte("k"), Value: []byte("v")}
	c := orig.Clone()
	c.Key[0] = 'X'
	c.Value[0] = 'Y'
	if orig.Key[0] != 'k' || orig.Value[0] != 'v' {
		t.Fatalf("Clone shares storage with original")
	}
}

func TestKVSize(t *testing.T) {
	kv := KV{Key: []byte("abc"), Value: []byte("defg")}
	if got := kv.Size(); got != 8+3+4 {
		t.Fatalf("Size = %d, want 15", got)
	}
}

func TestListAddAndBytes(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("a"), []byte("bb"))
	l.Add([]byte("cc"), []byte("d"))
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if want := 2*8 + 1 + 2 + 2 + 1; l.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", l.Bytes(), want)
	}
	if got := l.At(1); string(got.Key) != "cc" || string(got.Value) != "d" {
		t.Fatalf("At(1) = %v", got)
	}
}

func pairsOf(l *List) []string {
	var got []string
	for i := 0; i < l.Len(); i++ {
		kv := l.At(i)
		got = append(got, string(kv.Key)+string(kv.Value))
	}
	return got
}

func TestListSortStable(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("b"), []byte("1"))
	l.Add([]byte("a"), []byte("2"))
	l.Add([]byte("b"), []byte("3"))
	l.Add([]byte("a"), []byte("4"))
	l.Sort()
	want := []string{"a2", "a4", "b1", "b3"}
	if got := pairsOf(l); !reflect.DeepEqual(got, want) {
		t.Fatalf("Sort order %v, want %v", got, want)
	}
}

func TestListSortFunc(t *testing.T) {
	l := NewList(0)
	for _, s := range []string{"bbb", "a", "cc"} {
		l.Add([]byte(s), nil)
	}
	l.SortFunc(func(a, b KV) bool { return len(a.Key) > len(b.Key) })
	if string(l.Key(0)) != "bbb" || string(l.Key(2)) != "a" {
		t.Fatalf("SortFunc order wrong: %v", pairsOf(l))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("key1"), []byte("value1"))
	l.Add(nil, nil) // empty key and value are legal
	l.Add([]byte{0, 1, 2, 255}, bytes.Repeat([]byte("x"), 1000))
	got, err := Decode(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("decoded %d pairs, want %d", got.Len(), l.Len())
	}
	for i := 0; i < l.Len(); i++ {
		if !bytes.Equal(got.Key(i), l.Key(i)) || !bytes.Equal(got.Value(i), l.Value(i)) {
			t.Errorf("pair %d mismatch: %v vs %v", i, got.At(i), l.At(i))
		}
	}
	if got.Bytes() != l.Bytes() {
		t.Errorf("decoded Bytes = %d, want %d", got.Bytes(), l.Bytes())
	}
}

// TestEncodeAfterSortRebuilds checks that a permuted page still encodes into
// logical order and that the encoded form is independent of the page.
func TestEncodeAfterSortRebuilds(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("b"), []byte("1"))
	l.Add([]byte("a"), []byte("2"))
	l.Sort()
	enc := l.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := pairsOf(dec); !reflect.DeepEqual(got, []string{"a2", "b1"}) {
		t.Fatalf("encoded order %v", got)
	}
	// The rebuilt buffer must not alias the page.
	l.buf[5] ^= 0xFF
	if dec2, err := Decode(enc); err != nil || !reflect.DeepEqual(pairsOf(dec2), []string{"a2", "b1"}) {
		t.Fatalf("encoded buffer aliases a permuted page (err=%v)", err)
	}
}

// TestAppendEncodedCopies checks the checkpoint path: the stored page must
// share nothing with the live list, even on the unpermuted fast path.
func TestAppendEncodedCopies(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("k"), []byte("v"))
	stored := l.AppendEncoded(nil)
	l.Add([]byte("k2"), []byte("v2")) // mutate after snapshot
	dec, err := Decode(stored)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 1 || string(dec.Key(0)) != "k" {
		t.Fatalf("stored page corrupted by later Add: %v", pairsOf(dec))
	}
}

func TestAppendList(t *testing.T) {
	a := NewList(0)
	a.Add([]byte("a"), []byte("1"))
	b := NewList(0)
	b.Add([]byte("c"), []byte("2"))
	b.Add([]byte("b"), []byte("3"))
	b.Sort() // permuted source must still append in logical order
	a.AppendList(b)
	want := []string{"a1", "b3", "c2"}
	if got := pairsOf(a); !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendList = %v, want %v", got, want)
	}

	c := NewList(0)
	c.Add([]byte("x"), []byte("9"))
	a2 := NewList(0)
	a2.AppendList(c) // unpermuted wholesale copy
	if got := pairsOf(a2); !reflect.DeepEqual(got, []string{"x9"}) {
		t.Fatalf("AppendList unpermuted = %v", got)
	}
}

func TestReleaseAndReuse(t *testing.T) {
	l := NewListSized(2, 2*KV{Key: []byte("k"), Value: []byte("v")}.Size())
	l.Add([]byte("k"), []byte("v"))
	l.Release()
	if l.Len() != 0 || l.Bytes() != 0 {
		t.Fatalf("Release left state: len=%d bytes=%d", l.Len(), l.Bytes())
	}
	l.Add([]byte("again"), []byte("ok"))
	if string(l.Key(0)) != "again" {
		t.Fatalf("list unusable after Release")
	}
}

// TestLeasedBufferNotRecycled checks the double-use hazard: once Encode
// hands out the backing buffer, Release must not also push it to the pool.
func TestLeasedBufferNotRecycled(t *testing.T) {
	l := NewListSized(1, 64)
	l.Add(bytes.Repeat([]byte("k"), 32), bytes.Repeat([]byte("v"), 32))
	enc := l.Encode()
	l.Release()
	// If the leased buffer went back to the pool, this pooled allocation
	// could reuse and overwrite enc's storage.
	fresh := getBuf(len(enc))
	fresh = fresh[:cap(fresh)]
	for i := range fresh {
		fresh[i] = 0xEE
	}
	if dec, err := Decode(enc); err != nil || dec.Len() != 1 || dec.Key(0)[0] != 'k' {
		t.Fatalf("leased buffer was recycled by Release (err=%v)", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":             nil,
		"short":             {1, 2, 3},
		"truncated header":  {1, 0, 0, 0, 5, 0},
		"truncated payload": {1, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 'a'},
		"trailing garbage":  append(NewList(0).Encode(), 0xFF),
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: Decode succeeded, want error", name)
		}
	}
}

func TestDecodeCopyOwnsStorage(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("key"), []byte("val"))
	wire := l.Encode()
	dec, err := DecodeCopy(wire)
	if err != nil {
		t.Fatal(err)
	}
	wire[9] ^= 0xFF // corrupt the source buffer after the copy
	if string(dec.Key(0)) != "key" {
		t.Fatalf("DecodeCopy aliases its input")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(pairs [][2][]byte) bool {
		l := NewList(len(pairs))
		for _, p := range pairs {
			l.Add(p[0], p[1])
		}
		got, err := Decode(l.Encode())
		if err != nil || got.Len() != l.Len() {
			return false
		}
		for i := 0; i < l.Len(); i++ {
			if !bytes.Equal(got.Key(i), l.Key(i)) || !bytes.Equal(got.Value(i), l.Value(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvertGroupsAndOrder(t *testing.T) {
	l := NewList(0)
	l.Add([]byte("x"), []byte("1"))
	l.Add([]byte("y"), []byte("2"))
	l.Add([]byte("x"), []byte("3"))
	groups := Convert(l)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if string(groups[0].Key) != "x" || groups[0].NumValues() != 2 {
		t.Fatalf("group 0 = %q x%d", groups[0].Key, groups[0].NumValues())
	}
	if string(groups[0].Values[0]) != "1" || string(groups[0].Values[1]) != "3" {
		t.Fatalf("per-key value order not preserved: %v", groups[0].Values)
	}
	if string(groups[1].Key) != "y" {
		t.Fatalf("first-appearance key order not preserved")
	}
}

func TestConvertEmpty(t *testing.T) {
	if groups := Convert(NewList(0)); len(groups) != 0 {
		t.Fatalf("Convert(empty) = %d groups", len(groups))
	}
}

// convertReference is the naive map-based grouper the page grouper replaced;
// it is the executable spec for Convert's ordering semantics.
func convertReference(l *List) []KMV {
	index := make(map[string]int)
	var out []KMV
	for i := 0; i < l.Len(); i++ {
		kv := l.At(i)
		j, ok := index[string(kv.Key)]
		if !ok {
			j = len(out)
			index[string(kv.Key)] = j
			out = append(out, KMV{Key: kv.Key})
		}
		out[j].Values = append(out[j].Values, kv.Value)
	}
	return out
}

// TestConvertMatchesReference checks, pair for pair, that the run-detecting
// grouper is equivalent to the naive map-based reference on sorted, reversed
// and shuffled inputs across key cardinalities.
func TestConvertMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		card := 1 + rng.Intn(40)
		l := NewList(n)
		for i := 0; i < n; i++ {
			l.Add([]byte(fmt.Sprintf("k%03d", rng.Intn(card))), []byte(fmt.Sprintf("v%d", i)))
		}
		switch trial % 3 {
		case 1:
			l.Sort() // exercise the non-decreasing fast path
		case 2:
			l.SortFunc(func(a, b KV) bool { return bytes.Compare(a.Key, b.Key) > 0 }) // decreasing: general path
		}
		got, want := Convert(l), convertReference(l)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(got), len(want))
		}
		for g := range want {
			if !bytes.Equal(got[g].Key, want[g].Key) {
				t.Fatalf("trial %d group %d: key %q, want %q", trial, g, got[g].Key, want[g].Key)
			}
			if len(got[g].Values) != len(want[g].Values) {
				t.Fatalf("trial %d group %d: %d values, want %d", trial, g, len(got[g].Values), len(want[g].Values))
			}
			for v := range want[g].Values {
				if !bytes.Equal(got[g].Values[v], want[g].Values[v]) {
					t.Fatalf("trial %d group %d value %d: %q, want %q", trial, g, v, got[g].Values[v], want[g].Values[v])
				}
			}
		}
	}
}

func TestKMVBytes(t *testing.T) {
	g := KMV{Key: []byte("ab"), Values: [][]byte{[]byte("c"), []byte("de")}}
	if got := g.Bytes(); got != 5 {
		t.Fatalf("Bytes = %d, want 5", got)
	}
}

func TestFlattenInverseOfConvert(t *testing.T) {
	l := NewList(0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		l.Add([]byte(fmt.Sprintf("k%d", rng.Intn(20))), []byte(fmt.Sprintf("v%d", i)))
	}
	flat := Flatten(Convert(l))
	if flat.Len() != l.Len() {
		t.Fatalf("Flatten lost pairs: %d vs %d", flat.Len(), l.Len())
	}
	// Convert groups by key; Flatten keeps all pairs, and sorting both by
	// (key,value) must produce identical multisets.
	canon := func(l *List) []string {
		out := make([]string, 0, l.Len())
		for i := 0; i < l.Len(); i++ {
			out = append(out, string(l.Key(i))+"\x00"+string(l.Value(i)))
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(canon(flat), canon(l)) {
		t.Fatalf("Flatten(Convert(l)) is not a permutation of l")
	}
}

func TestConvertFlattenProperty(t *testing.T) {
	f := func(keys []uint8, vals []uint8) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		l := NewList(n)
		for i := 0; i < n; i++ {
			l.Add([]byte{keys[i] % 8}, []byte{vals[i]})
		}
		flat := Flatten(Convert(l))
		if flat.Len() != l.Len() {
			return false
		}
		// Per-key subsequences must be preserved exactly.
		perKey := func(l *List) map[string][]byte {
			m := map[string][]byte{}
			for i := 0; i < l.Len(); i++ {
				m[string(l.Key(i))] = append(m[string(l.Key(i))], l.Value(i)...)
			}
			return m
		}
		a, b := perKey(l), perKey(flat)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if !bytes.Equal(v, b[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
