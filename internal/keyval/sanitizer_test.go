package keyval

import (
	"strings"
	"testing"
)

// withSanitizer runs body with the ownership sanitizer forced on (fresh
// state), restoring the previous mode afterwards.
func withSanitizer(t *testing.T, body func(t *testing.T)) {
	t.Helper()
	prev := SetPoolSanitizer(true)
	defer func() {
		if r := recover(); r != nil {
			// Drop poisoned state before re-panicking so later tests start
			// clean even if body tripped a diagnostic it did not expect.
			san.mu.Lock()
			san.live, san.quarIdx, san.quar = map[*byte][]byte{}, map[*byte]int{}, nil
			san.mu.Unlock()
			SetPoolSanitizer(prev)
			panic(r)
		}
		SetPoolSanitizer(prev)
	}()
	body(t)
}

// expectPanic runs f and returns the recovered panic message, failing the
// test if f returns normally.
func expectPanic(t *testing.T, what string, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
		t.Fatalf("%s did not panic", what)
	}()
	return msg
}

// TestSanitizerCleanCycleBalances: a correct lease/transport/decode/release
// cycle trips nothing and ends with zero live buffers.
func TestSanitizerCleanCycleBalances(t *testing.T) {
	withSanitizer(t, func(t *testing.T) {
		for i := 0; i < 8; i++ {
			l := NewListSized(2, 64)
			l.Add([]byte("key"), []byte("value"))
			l.Add([]byte("key2"), []byte("value2"))
			wire := l.Encode()
			l.Release() // leased: leaves the buffer to the wire's consumer
			view, err := Decode(wire)
			if err != nil {
				t.Fatal(err)
			}
			view.Release() // consumer done: recycles the wire buffer
		}
		PoolSanitizerCheck()
		if n := PoolSanitizerLive(); n != 0 {
			t.Fatalf("balanced cycle leaked %d buffers", n)
		}
	})
}

// TestSanitizerCatchesDoubleRelease: the satellite negative test — a
// deliberate second Recycle of the same wire buffer must die with a
// double-release diagnostic, not silently poison the pool.
func TestSanitizerCatchesDoubleRelease(t *testing.T) {
	withSanitizer(t, func(t *testing.T) {
		l := NewListSized(1, 64)
		l.Add([]byte("k"), []byte("v"))
		wire := l.Encode()
		Recycle(wire)
		msg := expectPanic(t, "second Recycle", func() { Recycle(wire) })
		if !strings.Contains(msg, "double release") {
			t.Fatalf("diagnostic %q does not name the double release", msg)
		}
	})
}

// TestSanitizerCatchesUseAfterRelease: writing through a stale view of a
// released buffer lands in poison and is reported at the next check.
func TestSanitizerCatchesUseAfterRelease(t *testing.T) {
	withSanitizer(t, func(t *testing.T) {
		l := NewListSized(1, 64)
		l.Add([]byte("k"), []byte("v"))
		wire := l.Encode()
		stale := wire[:8] // a view someone kept past the hand-back
		Recycle(wire)
		stale[3] = 0x42 // ownership bug: the buffer belongs to the pool now
		msg := expectPanic(t, "PoolSanitizerCheck", PoolSanitizerCheck)
		if !strings.Contains(msg, "use after release") {
			t.Fatalf("diagnostic %q does not name the use after release", msg)
		}
		stale[3] = poisonByte // undo the deliberate damage so teardown's final verify passes

	})
}

// TestSanitizerReportsLeak: a pool-leased buffer that is never returned
// shows up in the live count.
func TestSanitizerReportsLeak(t *testing.T) {
	withSanitizer(t, func(t *testing.T) {
		l := NewListSized(1, 64)
		l.Add([]byte("k"), []byte("v"))
		_ = l.Encode() // leased out, never recycled
		if n := PoolSanitizerLive(); n == 0 {
			t.Fatal("dropped lease not counted as live")
		}
	})
}

// TestSanitizerQuarantineEviction: overflowing the quarantine verifies and
// evicts the oldest entries instead of growing without bound.
func TestSanitizerQuarantineEviction(t *testing.T) {
	withSanitizer(t, func(t *testing.T) {
		for i := 0; i < maxQuarantine+32; i++ {
			Recycle(getBuf(128))
		}
		san.mu.Lock()
		n := len(san.quar)
		san.mu.Unlock()
		if n > maxQuarantine {
			t.Fatalf("quarantine grew to %d entries (bound %d)", n, maxQuarantine)
		}
		PoolSanitizerCheck()
	})
}
