package keyval

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// randomList builds a list of n pairs; fixed-width keys when w > 0, mixed
// widths when w == 0.
func randomList(r *rand.Rand, n, w int) *List {
	l := NewList(n)
	for i := 0; i < n; i++ {
		kw := w
		if kw == 0 {
			kw = 1 + r.Intn(16)
		}
		k := make([]byte, kw)
		for j := range k {
			k[j] = byte('a' + r.Intn(4)) // heavy duplicates
		}
		v := make([]byte, r.Intn(24))
		r.Read(v)
		l.Add(k, v)
	}
	return l
}

func requireSameList(t *testing.T, what string, want, got *List) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d pairs, want %d", what, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		w, g := want.At(i), got.At(i)
		if !bytes.Equal(w.Key, g.Key) || !bytes.Equal(w.Value, g.Value) {
			t.Fatalf("%s: pair %d = (%q,%q), want (%q,%q)", what, i, g.Key, g.Value, w.Key, w.Value)
		}
	}
}

// TestPageWriterMatchesEncode: a writer fed the same pairs produces the
// byte-identical wire image List.Encode would, in both CRC modes — the
// invariant that lets Aggregate's scatter drop its per-destination scratch
// lists.
func TestPageWriterMatchesEncode(t *testing.T) {
	for _, crc := range []bool{false, true} {
		t.Run(fmt.Sprintf("crc=%v", crc), func(t *testing.T) {
			prev := SetPageCRC(crc)
			defer SetPageCRC(prev)
			r := rand.New(rand.NewSource(9))
			for _, n := range []int{0, 1, 50} {
				l := randomList(r, n, 0)
				var w PageWriter
				w.Reset(l.Len(), l.Bytes())
				for i := 0; i < l.Len(); i++ {
					w.AddRecord(l.Record(i))
				}
				page := w.Finish()
				want := l.AppendEncoded(nil)
				if !bytes.Equal(page, want) {
					t.Fatalf("n=%d: writer page (%d bytes) != Encode image (%d bytes)", n, len(page), len(want))
				}
				got, err := Decode(append([]byte(nil), page...))
				if err != nil {
					t.Fatalf("n=%d: writer page does not decode: %v", n, err)
				}
				requireSameList(t, "decode", l, got)
				Recycle(page)
				l.Release()
			}
		})
	}
}

// TestSegmentedFrameIsSplitEncodeImage: a carved frame (header page, record
// segments, trailer page in CRC mode) concatenates to exactly the contiguous
// Encode image, and VerifySegmentedPage + AppendSegment rebuild the original
// pairs.
func TestSegmentedFrameIsSplitEncodeImage(t *testing.T) {
	for _, crc := range []bool{false, true} {
		t.Run(fmt.Sprintf("crc=%v", crc), func(t *testing.T) {
			prev := SetPageCRC(crc)
			defer SetPageCRC(prev)
			r := rand.New(rand.NewSource(13))
			l := randomList(r, 200, 0)

			// Carve at arbitrary record boundaries.
			var frame [][]byte
			frame = append(frame, CountHeaderPage(l.Len()))
			seg := GetPage(256)
			for i := 0; i < l.Len(); i++ {
				seg = AppendRecord(seg, l.At(i))
				if r.Intn(5) == 0 {
					frame = append(frame, seg)
					seg = GetPage(256)
				}
			}
			if len(seg) > 0 {
				frame = append(frame, seg)
			} else {
				Recycle(seg)
			}
			if tr := SegmentsTrailer(frame); tr != nil {
				frame = append(frame, tr)
			}

			var concat []byte
			for _, p := range frame {
				concat = append(concat, p...)
			}
			want := l.AppendEncoded(nil)
			if !bytes.Equal(concat, want) {
				t.Fatalf("frame concatenation (%d bytes) != Encode image (%d bytes)", len(concat), len(want))
			}

			count, segs, err := VerifySegmentedPage(frame)
			if err != nil {
				t.Fatal(err)
			}
			if count != l.Len() {
				t.Fatalf("header count %d, want %d", count, l.Len())
			}
			rebuilt := NewList(0)
			got := 0
			for _, s := range segs {
				n, err := rebuilt.AppendSegment(s)
				if err != nil {
					t.Fatal(err)
				}
				got += n
			}
			if got != count {
				t.Fatalf("segments held %d pairs, header says %d", got, count)
			}
			requireSameList(t, "rebuilt", l, rebuilt)
			rebuilt.Release()
			for _, p := range frame {
				Recycle(p)
			}
			l.Release()
		})
	}
}

func TestVerifySegmentedPageRejections(t *testing.T) {
	if _, _, err := VerifySegmentedPage([][]byte{{1, 2, 3, 4}}); err == nil {
		t.Fatal("single-page frame accepted")
	}
	if _, _, err := VerifySegmentedPage([][]byte{{1, 2, 3}, {}}); err == nil {
		t.Fatal("3-byte header page accepted")
	}

	prev := SetPageCRC(true)
	defer SetPageCRC(prev)
	l := randomList(rand.New(rand.NewSource(1)), 20, 4)
	frame := [][]byte{CountHeaderPage(l.Len())}
	seg := GetPage(64)
	for i := 0; i < l.Len(); i++ {
		seg = AppendRecord(seg, l.At(i))
	}
	frame = append(frame, seg, SegmentsTrailer([][]byte{frame[0], seg}))
	if _, _, err := VerifySegmentedPage(frame); err != nil {
		t.Fatalf("valid CRC frame rejected: %v", err)
	}
	// Any damaged byte must surface as a typed integrity error.
	frame[1][3] ^= 0x10
	_, _, err := VerifySegmentedPage(frame)
	if err == nil {
		t.Fatal("damaged segment accepted")
	}
	var ie *IntegrityError
	if !asIntegrity(err, &ie) {
		t.Fatalf("damage surfaced as %T (%v), want *IntegrityError", err, err)
	}
	frame[1][3] ^= 0x10
	// A missing trailer page in CRC mode is rejected too.
	if _, _, err := VerifySegmentedPage(frame[:2]); err == nil {
		t.Fatal("trailerless frame accepted in CRC mode")
	}
	l.Release()
}

func asIntegrity(err error, out **IntegrityError) bool {
	ie, ok := err.(*IntegrityError)
	if ok {
		*out = ie
	}
	return ok
}

func TestAppendSegmentRejectsTornRecords(t *testing.T) {
	l := NewList(0)
	if _, err := l.AppendSegment([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated header accepted")
	}
	seg := AppendRecord(nil, KV{Key: []byte("k"), Value: []byte("v")})
	if _, err := l.AppendSegment(seg[:len(seg)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if l.Len() != 0 {
		t.Fatalf("failed appends left %d pairs", l.Len())
	}
	if n, err := l.AppendSegment(seg); err != nil || n != 1 {
		t.Fatalf("valid segment: n=%d err=%v", n, err)
	}
}

// TestSortRadixMatchesComparison: List.Sort's fixed-width radix fast path is
// byte-identical to the stable comparison path across key widths, duplicate
// densities and both sides of the threshold.
func TestSortRadixMatchesComparison(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, w := range []int{0, 1, 4, 8, 12, 16} { // 0 = variable-width fallback
		for _, n := range []int{3, 127, 128, 129, 2000} {
			l := randomList(r, n, w)
			type pair struct {
				k, v []byte
				seq  int
			}
			ref := make([]pair, l.Len())
			for i := 0; i < l.Len(); i++ {
				kv := l.At(i)
				ref[i] = pair{k: append([]byte(nil), kv.Key...), v: append([]byte(nil), kv.Value...), seq: i}
			}
			sort.SliceStable(ref, func(a, b int) bool { return bytes.Compare(ref[a].k, ref[b].k) < 0 })
			l.Sort()
			for i := 0; i < l.Len(); i++ {
				kv := l.At(i)
				if !bytes.Equal(kv.Key, ref[i].k) || !bytes.Equal(kv.Value, ref[i].v) {
					t.Fatalf("w=%d n=%d: pos %d = (%q,%q), want (%q,%q)", w, n, i, kv.Key, kv.Value, ref[i].k, ref[i].v)
				}
			}
			l.Release()
		}
	}
}
