package keyval

import "encoding/binary"

// PageWriter assembles one wire page — the exact Encode format, 4-byte count
// header plus packed records — directly in a pooled buffer. It is the
// scatter target for shuffle senders: where the old send loop leased a
// scratch List per destination and then Encode'd it (an offsets index and a
// second buffer lease per destination per round), a writer builds the final
// wire image in place with no offsets index at all. Finish patches the count
// and, in page-CRC mode, seals the trailer, yielding a buffer that Decode
// accepts and Recycle recycles — byte-identical to what List.Encode of the
// same pairs would have produced.
type PageWriter struct {
	buf []byte
	n   int
}

// Reset arms the writer for a page expected to hold npairs pairs and
// payloadBytes encoded payload bytes (the sum of KV.Size over the pairs to
// come; sizes are a hint — the page grows if exceeded). Any previous buffer
// is abandoned to its consumer, so Reset after Finish starts a fresh page.
func (w *PageWriter) Reset(npairs, payloadBytes int) {
	w.buf = append(getBuf(4+payloadBytes+trailerLen()), 0, 0, 0, 0)
	w.n = 0
}

// Active reports whether the writer currently holds an unfinished page.
func (w *PageWriter) Active() bool { return w.buf != nil }

// Add appends one pair.
func (w *PageWriter) Add(key, value []byte) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(key)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(value)))
	w.buf = append(w.buf, key...)
	w.buf = append(w.buf, value...)
	w.n++
}

// AddRecord appends one already-encoded record (header + key + value), the
// form List.Record returns — one copy, no re-encoding.
func (w *PageWriter) AddRecord(rec []byte) {
	w.buf = append(w.buf, rec...)
	w.n++
}

// Pairs returns the number of pairs added since the last Reset.
func (w *PageWriter) Pairs() int { return w.n }

// Size returns the current encoded size of the page under construction
// (count header included, integrity trailer not — it is added by Finish).
func (w *PageWriter) Size() int { return len(w.buf) }

// Finish patches the count header, seals the integrity trailer when page
// CRC mode is on, and hands the wire buffer over; the writer is empty until
// the next Reset. Ownership of the buffer moves to the caller's consumer
// (transport receiver or disk), exactly like a buffer leased by Encode.
func (w *PageWriter) Finish() []byte {
	page := FinishPage(w.buf, 0, w.n)
	w.buf, w.n = nil, 0
	return page
}
