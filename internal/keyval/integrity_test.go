package keyval

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// withPageCRC runs body with page sealing forced on, restoring the previous
// mode afterwards.
func withPageCRC(t *testing.T, body func(t *testing.T)) {
	t.Helper()
	prev := SetPageCRC(true)
	defer SetPageCRC(prev)
	body(t)
}

func sampleList() *List {
	l := NewList(4)
	l.Add([]byte("alpha"), []byte("1"))
	l.Add([]byte("beta"), []byte("22"))
	l.Add([]byte("gamma"), []byte("333"))
	l.Add([]byte("alpha"), []byte("4444"))
	return l
}

func TestPageCRCRoundTrip(t *testing.T) {
	withPageCRC(t, func(t *testing.T) {
		l := sampleList()
		enc := l.Encode()
		if len(enc) != l.EncodedSize() {
			t.Fatalf("len(Encode()) = %d, EncodedSize() = %d", len(enc), l.EncodedSize())
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 4 || !bytes.Equal(got.Key(2), []byte("gamma")) {
			t.Fatalf("round trip lost data: %d pairs", got.Len())
		}
		if got.Bytes() != l.Bytes() {
			t.Fatalf("decoded Bytes() = %d includes trailer, want %d", got.Bytes(), l.Bytes())
		}
	})
}

func TestPageCRCRoundTripPermuted(t *testing.T) {
	withPageCRC(t, func(t *testing.T) {
		l := sampleList()
		l.Sort()
		enc := l.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Key(0), []byte("alpha")) || !bytes.Equal(got.Key(3), []byte("gamma")) {
			t.Fatalf("sorted round trip wrong order: %v %v", got.Key(0), got.Key(3))
		}
	})
}

func TestPageCRCRoundTripEmpty(t *testing.T) {
	withPageCRC(t, func(t *testing.T) {
		enc := NewList(0).Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 0 {
			t.Fatalf("empty round trip: %d pairs", got.Len())
		}
	})
}

// TestPageCRCDetectsEveryBitFlip: CRC32C catches any single-bit flip
// anywhere in the page, including inside the trailer itself.
func TestPageCRCDetectsEveryBitFlip(t *testing.T) {
	withPageCRC(t, func(t *testing.T) {
		enc := sampleList().Encode()
		for bit := 0; bit < 8*len(enc); bit++ {
			cp := append([]byte(nil), enc...)
			cp[bit/8] ^= 1 << (bit % 8)
			l, err := Decode(cp)
			if err == nil {
				t.Fatalf("bit flip %d decoded silently (%d pairs)", bit, l.Len())
			}
			var ie *IntegrityError
			if !errors.As(err, &ie) {
				t.Fatalf("bit flip %d: error %v is not an IntegrityError", bit, err)
			}
		}
	})
}

func TestPageCRCDetectsTruncation(t *testing.T) {
	withPageCRC(t, func(t *testing.T) {
		enc := sampleList().Encode()
		for keep := 0; keep < len(enc); keep++ {
			if _, err := Decode(enc[:keep]); err == nil {
				t.Fatalf("truncation to %d bytes decoded silently", keep)
			}
		}
		// DecodeCopy must reject the same inputs without leaking pool buffers.
		if _, err := DecodeCopy(enc[:len(enc)-3]); err == nil {
			t.Fatal("DecodeCopy accepted a truncated page")
		}
	})
}

// TestPageCRCModeMismatch: sealed pages do not decode with the mode off
// (trailing bytes), and unsealed pages do not decode with the mode on.
func TestPageCRCModeMismatch(t *testing.T) {
	l := sampleList()
	prev := SetPageCRC(true)
	sealed := append([]byte(nil), l.Encode()...)
	SetPageCRC(false)
	plain := append([]byte(nil), sampleList().Encode()...)
	if _, err := Decode(sealed); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("sealed page with mode off: err = %v, want trailing-bytes rejection", err)
	}
	SetPageCRC(true)
	if _, err := Decode(plain); err == nil {
		t.Fatal("unsealed page decoded with mode on")
	}
	SetPageCRC(prev)
}

// TestPageCRCSnapshotOffset: AppendEncoded seals only its own page image,
// even when the caller prepended bytes (checkpoint snapshots do).
func TestPageCRCSnapshotOffset(t *testing.T) {
	withPageCRC(t, func(t *testing.T) {
		l := sampleList()
		page := l.AppendEncoded([]byte{0x7f})
		got, err := Decode(page[1:])
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 4 {
			t.Fatalf("snapshot round trip: %d pairs", got.Len())
		}
	})
}

// TestPageCRCZeroCopyWhenRoom: a sized list has spare capacity, so sealing
// must not copy the page.
func TestPageCRCZeroCopyWhenRoom(t *testing.T) {
	withPageCRC(t, func(t *testing.T) {
		l := NewListSized(1, 64)
		l.Add([]byte("k"), []byte("v"))
		enc := l.Encode()
		if &enc[0] != &l.buf[0] {
			t.Fatal("Encode copied a page that had room for the trailer")
		}
		if !l.leased {
			t.Fatal("zero-copy sealed page did not lease the buffer")
		}
	})
}
