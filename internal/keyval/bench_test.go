package keyval

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchPairs generates n deterministic key/value pairs; card bounds the key
// cardinality (card <= 0 means all-distinct keys).
func benchPairs(n, card int, seed int64) (keys, values [][]byte) {
	rng := rand.New(rand.NewSource(seed))
	keys = make([][]byte, n)
	values = make([][]byte, n)
	for i := 0; i < n; i++ {
		k := i
		if card > 0 {
			k = rng.Intn(card)
		}
		keys[i] = []byte(fmt.Sprintf("key-%08d", k))
		values[i] = []byte(fmt.Sprintf("value-%06d", i))
	}
	return keys, values
}

func buildList(keys, values [][]byte) *List {
	l := NewList(len(keys))
	for i := range keys {
		l.Add(keys[i], values[i])
	}
	return l
}

// BenchmarkListAppend measures building a shuffle page pair by pair — the
// inner loop of every Map/Reduce emit.
func BenchmarkListAppend(b *testing.B) {
	keys, values := benchPairs(1<<14, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := buildList(keys, values)
		if l.Len() != len(keys) {
			b.Fatal("bad length")
		}
	}
}

// BenchmarkListSort measures the local stable key sort on a shuffled page.
func BenchmarkListSort(b *testing.B) {
	keys, values := benchPairs(1<<15, 1<<12, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l := buildList(keys, values)
		b.StartTimer()
		l.Sort()
	}
}

// BenchmarkConvertGrouped measures KV->KMV grouping when equal keys are
// already adjacent and sorted (the post-sort fast path).
func BenchmarkConvertGrouped(b *testing.B) {
	keys, values := benchPairs(1<<15, 1<<10, 3)
	l := buildList(keys, values)
	l.Sort()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := Convert(l)
		if len(groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkConvertRandom measures grouping with interleaved keys (the
// general path).
func BenchmarkConvertRandom(b *testing.B) {
	keys, values := benchPairs(1<<15, 1<<10, 4)
	l := buildList(keys, values)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := Convert(l)
		if len(groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkEncodeDecode measures the wire round-trip a shuffle performs for
// every destination page.
func BenchmarkEncodeDecode(b *testing.B) {
	keys, values := benchPairs(1<<14, 0, 5)
	l := buildList(keys, values)
	buf := l.Encode()
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := l.Encode()
		dec, err := Decode(enc)
		if err != nil {
			b.Fatal(err)
		}
		if dec.Len() != l.Len() {
			b.Fatal("length mismatch")
		}
	}
}
