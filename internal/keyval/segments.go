package keyval

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Segmented page images.
//
// The batched shuffle (mrmpi.Aggregate over cluster.SendPages) moves each
// destination's data as ONE message whose logical bytes are a wire page
// image — but physically split, at record boundaries, across separate pooled
// buffers, so a sender streaming a spilled state never materializes one
// giant contiguous page and a receiver recycles each piece independently.
// The split is pure framing: concatenating the pages of a frame yields
// byte-for-byte what Encode would have produced, which is what keeps batched
// and unbatched runs bit-identical on the simulated timeline.
//
// A multi-page frame obeys a fixed discipline, validated on receive:
//
//	page 0:      exactly the 4-byte count header
//	pages 1..k:  whole-record segments (headerless runs of packed records)
//	final page:  exactly the 8-byte integrity trailer — present iff page
//	             CRC mode is on, covering all preceding pages
//
// A single-page frame is just a complete Encode image and takes the normal
// Decode path.

// PageOverhead returns one wire frame's framing bytes outside the packed
// records: the 4-byte count header plus the integrity trailer in CRC mode —
// the same figure whether the frame is a single Encode image or a segmented
// split of one.
func PageOverhead() int { return 4 + trailerLen() }

// GetPage returns a zero-length pooled byte buffer with capacity >= n — the
// allocation primitive for transport frames assembled outside a List
// (record segments, codec output). Return it with Recycle, exactly once.
func GetPage(n int) []byte { return getBuf(n) }

// AppendRecord appends kv's wire record (8-byte header + key + value) to
// dst and returns it — the streaming form of Add for headerless record
// segments.
func AppendRecord(dst []byte, kv KV) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(kv.Key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(kv.Value)))
	dst = append(dst, kv.Key...)
	return append(dst, kv.Value...)
}

// CountHeaderPage builds the 4-byte count-header page of a segmented frame.
func CountHeaderPage(count int) []byte {
	return binary.LittleEndian.AppendUint32(getBuf(4), uint32(count))
}

// SegmentsTrailer returns the 8-byte integrity-trailer page covering the
// given frame pages (header page included), or nil when page CRC mode is
// off. The checksum chains across the pages, so it equals the trailer a
// contiguous Encode of the same bytes would have sealed.
func SegmentsTrailer(pages [][]byte) []byte {
	if !pageCRCOn.Load() {
		return nil
	}
	sum := crc32.Checksum(nil, castagnoli)
	for _, p := range pages {
		sum = crc32.Update(sum, castagnoli, p)
	}
	out := binary.LittleEndian.AppendUint32(getBuf(trailerSize), pageMagic)
	return binary.LittleEndian.AppendUint32(out, sum)
}

// VerifySegmentedPage validates a multi-page frame against the discipline
// above — trailer checksum first (in CRC mode), then the header shape — and
// returns the pair count and the record segments. Ownership of every page
// stays with the caller; the returned segments alias pages[1:]. It does not
// validate record structure inside the segments (AppendSegment does, as
// each is merged).
func VerifySegmentedPage(pages [][]byte) (count int, segs [][]byte, err error) {
	if len(pages) < 2 {
		return 0, nil, fmt.Errorf("keyval: segmented frame needs >= 2 pages, got %d", len(pages))
	}
	if pageCRCOn.Load() {
		last := pages[len(pages)-1]
		if len(last) != trailerSize {
			return 0, nil, &IntegrityError{Len: len(last), Reason: "segmented frame missing trailer page"}
		}
		if binary.LittleEndian.Uint32(last) != pageMagic {
			return 0, nil, &IntegrityError{Len: len(last), Reason: "bad trailer magic"}
		}
		sum := crc32.Checksum(nil, castagnoli)
		for _, p := range pages[:len(pages)-1] {
			sum = crc32.Update(sum, castagnoli, p)
		}
		if binary.LittleEndian.Uint32(last[4:]) != sum {
			return 0, nil, &IntegrityError{Len: len(last), Reason: "checksum mismatch"}
		}
		pages = pages[:len(pages)-1]
	}
	if len(pages[0]) != 4 {
		return 0, nil, fmt.Errorf("keyval: segmented frame header page is %d bytes, want 4", len(pages[0]))
	}
	return int(binary.LittleEndian.Uint32(pages[0])), pages[1:], nil
}

// AppendSegment validates a headerless record segment and appends its pairs
// to l (wholesale, preserving order), returning how many pairs it held. The
// segment bytes are copied; the caller still owns (and recycles) seg.
func (l *List) AppendSegment(seg []byte) (int, error) {
	l.ensure()
	base := uint32(len(l.buf))
	startOff := len(l.off)
	pos := uint64(0)
	total := uint64(len(seg))
	n := 0
	for pos < total {
		if total-pos < 8 {
			l.off = l.off[:startOff]
			return 0, fmt.Errorf("keyval: truncated record header at segment byte %d", pos)
		}
		k := binary.LittleEndian.Uint32(seg[pos:])
		v := binary.LittleEndian.Uint32(seg[pos+4:])
		rec := 8 + uint64(k) + uint64(v)
		if total-pos < rec {
			l.off = l.off[:startOff]
			return 0, fmt.Errorf("keyval: truncated record payload at segment byte %d", pos)
		}
		l.off = append(l.off, base+uint32(pos))
		pos += rec
		n++
	}
	l.buf = append(l.buf, seg...)
	return n, nil
}
