// Package sigflush makes Ctrl-C safe for long runs: a SIGINT or SIGTERM
// runs registered flush functions (newest first) before the process dies,
// so partial observability artifacts — a Chrome trace of the run so far, a
// metrics JSON, a CPU profile — land on disk instead of vanishing with the
// process. Exits with the conventional 128+signal status so callers (CI,
// shells) still see the interruption.
package sigflush

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

var (
	mu       sync.Mutex
	flushers []func()
	armed    bool
)

// Register adds fn to the shutdown flush list and arms the signal watcher on
// first use. Flushers run newest-first, mirroring defer, so a flusher
// registered after another may depend on it still being live. fn must be
// safe to call while the interrupted work is mid-flight (the recorders and
// profile writers here all are: they snapshot under their own locks).
func Register(fn func()) {
	mu.Lock()
	defer mu.Unlock()
	flushers = append(flushers, fn)
	if armed {
		return
	}
	armed = true
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		runFlushers()
		code := 128 + 15 // SIGTERM
		if sig == os.Interrupt {
			code = 128 + 2
		}
		os.Exit(code)
	}()
}

// runFlushers executes every registered flusher newest-first, once each.
func runFlushers() {
	mu.Lock()
	fns := flushers
	flushers = nil
	mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}
