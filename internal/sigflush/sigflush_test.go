package sigflush

import "testing"

func TestRunFlushersNewestFirstOnce(t *testing.T) {
	var order []int
	Register(func() { order = append(order, 1) })
	Register(func() { order = append(order, 2) })
	runFlushers()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("flush order %v, want [2 1]", order)
	}
	runFlushers() // the list drains: a second signal must not re-run them
	if len(order) != 2 {
		t.Fatalf("flushers ran twice: %v", order)
	}
}
