package pagerank

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/powerlyra"
	"repro/internal/vtime"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.Generate(graph.Google(), 0.002, 11)
}

func TestSequentialBasics(t *testing.T) {
	// Cycle of 3: symmetric, all ranks equal 1/3.
	g := &graph.Graph{NumVertices: 3, Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}}
	pr := Sequential(g, 50)
	for v, x := range pr {
		if math.Abs(x-1.0/3) > 1e-9 {
			t.Fatalf("cycle rank[%d] = %v, want 1/3", v, x)
		}
	}
	if Sequential(&graph.Graph{}, 5) != nil {
		t.Fatal("empty graph should return nil")
	}
}

func TestSequentialSinkAttractsRank(t *testing.T) {
	// Star into vertex 0: it must end with the highest rank.
	g := &graph.Graph{NumVertices: 4, Edges: []graph.Edge{
		{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0}, {Src: 0, Dst: 1},
	}}
	pr := Sequential(g, 30)
	for v := 1; v < 4; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("hub rank %v not above leaf %d's %v", pr[0], v, pr[v])
		}
	}
}

func distributedMatchesSequential(t *testing.T, method powerlyra.Method) *Result {
	t.Helper()
	g := testGraph(t)
	const iters = 10
	want := Sequential(g, iters)

	a, err := powerlyra.Partition(g, method, 8, powerlyra.DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(cluster.DefaultConfig(4))
	res, err := Distributed(cl, a, iters)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != len(want) {
		t.Fatalf("rank vector length %d, want %d", len(res.Ranks), len(want))
	}
	for v := range want {
		if math.Abs(res.Ranks[v]-want[v]) > 1e-9 {
			t.Fatalf("%v: rank[%d] = %.12f, sequential %.12f", method, v, res.Ranks[v], want[v])
		}
	}
	return res
}

func TestDistributedMatchesSequentialHybrid(t *testing.T) {
	res := distributedMatchesSequential(t, powerlyra.HybridCut)
	if res.Makespan <= 0 || res.WireBytes <= 0 {
		t.Fatalf("no time/traffic: %+v", res)
	}
	if math.Abs(float64(res.PerIteration)*10-float64(res.Makespan)) > 1 {
		t.Fatalf("PerIteration inconsistent: %v * 10 vs %v", res.PerIteration, res.Makespan)
	}
}

func TestDistributedMatchesSequentialVertexCut(t *testing.T) {
	distributedMatchesSequential(t, powerlyra.VertexCut)
}

func TestDistributedMatchesSequentialEdgeCut(t *testing.T) {
	distributedMatchesSequential(t, powerlyra.EdgeCut)
}

func TestDistributedValidation(t *testing.T) {
	g := testGraph(t)
	a, _ := powerlyra.Partition(g, powerlyra.HybridCut, 4, 0)
	cl := cluster.New(cluster.DefaultConfig(2))
	if _, err := Distributed(cl, a, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	empty, _ := powerlyra.Partition(&graph.Graph{}, powerlyra.HybridCut, 4, 0)
	if _, err := Distributed(cl, empty, 3); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestDistributedDeterministic(t *testing.T) {
	g := testGraph(t)
	a, _ := powerlyra.Partition(g, powerlyra.HybridCut, 8, 0)
	run := func() (vtime.Duration, float64) {
		cl := cluster.New(cluster.DefaultConfig(4))
		res, err := Distributed(cl, a, 5)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, x := range res.Ranks {
			sum += x
		}
		return res.Makespan, sum
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1 != m2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", m1, s1, m2, s2)
	}
}

// TestFig14Ordering is the Fig. 14 shape: hybrid fastest, vertex-cut close
// behind, edge-cut clearly worst.
func TestFig14Ordering(t *testing.T) {
	g := graph.Generate(graph.Google(), 0.005, 4)
	const iters = 5
	times := map[powerlyra.Method]float64{}
	for _, m := range []powerlyra.Method{powerlyra.EdgeCut, powerlyra.VertexCut, powerlyra.HybridCut} {
		a, err := powerlyra.Partition(g, m, 16, powerlyra.DefaultThreshold)
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.New(cluster.DefaultConfig(8))
		res, err := Distributed(cl, a, iters)
		if err != nil {
			t.Fatal(err)
		}
		times[m] = float64(res.Makespan)
	}
	h, v, e := times[powerlyra.HybridCut], times[powerlyra.VertexCut], times[powerlyra.EdgeCut]
	if !(h < v && v < e) {
		t.Fatalf("Fig 14 ordering broken: hybrid=%.3g vertex=%.3g edge=%.3g", h, v, e)
	}
	if v-h > e-v {
		t.Fatalf("vertex-cut should sit closer to hybrid (§IV-C): %.3g / %.3g / %.3g", h, v, e)
	}
}

func TestCommunicationTracksReplication(t *testing.T) {
	// Same graph, same iterations: wire bytes must order by replication
	// factor across methods.
	g := graph.Generate(graph.Google(), 0.003, 9)
	bytesFor := func(m powerlyra.Method) int64 {
		a, _ := powerlyra.Partition(g, m, 16, powerlyra.DefaultThreshold)
		cl := cluster.New(cluster.DefaultConfig(8))
		res, err := Distributed(cl, a, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.WireBytes
	}
	h, v, e := bytesFor(powerlyra.HybridCut), bytesFor(powerlyra.VertexCut), bytesFor(powerlyra.EdgeCut)
	if !(h < v && v < e) {
		t.Fatalf("wire bytes do not track replication: hybrid=%d vertex=%d edge=%d", h, v, e)
	}
}
