// Package pagerank runs PageRank over partitioned graphs — the test
// algorithm of the paper's Fig. 14 experiments ("We choose PageRank as the
// test algorithm, which computes the rank of vertices in a graph").
//
// Distributed executes a GAS-style synchronous PageRank on the simulated
// cluster: every iteration gathers per-edge contributions on the partition
// that stores the edge, combines partials at each vertex's master rank, and
// scatters refreshed values to every partition holding a mirror (or, under
// edge-cut, a ghost). Communication volume therefore follows the
// assignment's replication factor — exactly the mechanism PowerLyra's
// hybrid-cut optimizes — so partition quality translates into simulated
// iteration time with no hand-tuned constants.
package pagerank

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/powerlyra"
	"repro/internal/vtime"
)

// Damping is the standard PageRank damping factor.
const Damping = 0.85

// Sequential is the single-machine reference implementation:
//
//	pr'(v) = (1-d)/N + d * sum over u->v of pr(u)/outdeg(u).
//
// (Dangling mass is dropped, matching the distributed engine; correctness
// tests compare the two.)
func Sequential(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices
	if n == 0 {
		return nil
	}
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0 / float64(n)
	}
	outdeg := g.OutDegrees()
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		base := (1 - Damping) / float64(n)
		for i := range next {
			next[i] = base
		}
		for _, e := range g.Edges {
			next[e.Dst] += Damping * pr[e.Src] / float64(outdeg[e.Src])
		}
		pr = next
	}
	return pr
}

// Result is the outcome of a distributed run.
type Result struct {
	Ranks     []float64
	Makespan  vtime.Duration
	WireBytes int64
	// PerIteration is Makespan / iterations.
	PerIteration vtime.Duration
}

// Distributed runs iters synchronous PageRank iterations over the
// assignment on the cluster. Partition p is hosted by rank p mod P; vertex
// v's master is rank HashVertex(v, P). Setup (building adjacency and mirror
// routing tables) happens outside the timed region, mirroring the paper's
// exclusion of load time.
func Distributed(cl *cluster.Cluster, a *powerlyra.Assignment, iters int) (*Result, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("pagerank: iterations must be positive, got %d", iters)
	}
	g := a.Graph
	n := g.NumVertices
	if n == 0 {
		return nil, fmt.Errorf("pagerank: empty graph")
	}
	cl.Reset()
	p := cl.Size()
	outdeg := g.OutDegrees()

	// --- Host-side setup (untimed ingress) ---
	// Edges stored per rank (primary copies; computation counts each edge
	// once).
	edgesByRank := make([][]graph.Edge, p)
	// needRank[v] is the set of ranks that must receive v's refreshed value
	// each iteration — every rank computing with v as a source. Vertex-cut
	// and hybrid-cut sync one copy per (vertex, partition) pair, the
	// PowerGraph-style mirror update whose total volume is the replication
	// factor. Edge-cut systems (Pregel/GraphLab-1 lineage) instead move one
	// message per cut edge — ghostMsgs counts those per-edge deliveries —
	// which is exactly the communication blow-up hybrid-cut was invented to
	// avoid.
	need := make([]map[int]struct{}, n)
	addNeed := func(v int32, rank int) {
		if need[v] == nil {
			need[v] = make(map[int]struct{})
		}
		need[v][rank] = struct{}{}
	}
	ghostMsgs := make([]map[int]int, n)
	addGhost := func(v int32, rank int) {
		if ghostMsgs[v] == nil {
			ghostMsgs[v] = make(map[int]int)
		}
		ghostMsgs[v][rank]++
	}
	for i, e := range g.Edges {
		pr := int(a.EdgePart[i]) % p
		edgesByRank[pr] = append(edgesByRank[pr], e)
		addNeed(e.Src, pr)
		if a.GhostPart != nil && a.GhostPart[i] >= 0 {
			gr := int(a.GhostPart[i]) % p
			addGhost(e.Src, gr)
			addGhost(e.Dst, gr)
		}
	}
	// Master vertex lists and scatter routing per master rank.
	masterOf := make([]int, n)
	masterVerts := make([][]int32, p)
	for v := 0; v < n; v++ {
		m := powerlyra.HashVertex(int32(v), p)
		masterOf[v] = m
		masterVerts[m] = append(masterVerts[m], int32(v))
	}

	ranks := make([]float64, n)
	_, err := cl.Run(func(r *cluster.Rank) error {
		comm := mpi.NewComm(r)
		me := r.ID()
		local := edgesByRank[me]
		// Mirror values of sources this rank needs; initialized to 1/N
		// (globally known, no initial sync required).
		mirror := map[int32]float64{}
		for _, e := range local {
			mirror[e.Src] = 1.0 / float64(n)
		}
		// Master state.
		myVerts := masterVerts[me]
		pr := map[int32]float64{}
		for _, v := range myVerts {
			pr[v] = 1.0 / float64(n)
		}

		for it := 0; it < iters; it++ {
			// Gather: per-edge contributions accumulated per destination.
			endGather := r.Span("pagerank", "gather")
			acc := map[int32]float64{}
			for _, e := range local {
				acc[e.Dst] += mirror[e.Src] / float64(outdeg[e.Src])
			}
			r.Charge(r.Compute().ScanCost(len(local), 0))
			r.Charge(r.Compute().GroupCost(len(acc), 0))
			endGather()

			// Send partials to destination masters.
			out := make([][]byte, p)
			for v, x := range acc {
				m := masterOf[v]
				out[m] = appendVF(out[m], v, x)
			}
			recv, err := comm.Alltoall(sortedBufs(out))
			if err != nil {
				return err
			}
			endApply := r.Span("pagerank", "apply")
			sum := map[int32]float64{}
			for _, buf := range recv {
				if err := foreachVF(buf, func(v int32, x float64) {
					sum[v] += x
				}); err != nil {
					return err
				}
			}
			r.Charge(r.Compute().GroupCost(len(sum), 0))

			// Apply at masters.
			base := (1 - Damping) / float64(n)
			for _, v := range myVerts {
				pr[v] = base + Damping*sum[v]
			}
			r.Charge(r.Compute().ScanCost(len(myVerts), 0))
			endApply()

			// Scatter refreshed values to mirrors (one copy per mirror) and
			// to ghosts (one copy per ghost edge, the edge-cut penalty).
			outM := make([][]byte, p)
			for _, v := range myVerts {
				for dst := range need[v] {
					outM[dst] = appendVF(outM[dst], v, pr[v])
				}
				for dst, copies := range ghostMsgs[v] {
					for c := 0; c < copies; c++ {
						outM[dst] = appendVF(outM[dst], v, pr[v])
					}
				}
			}
			recvM, err := comm.Alltoall(sortedBufs(outM))
			if err != nil {
				return err
			}
			endScatter := r.Span("pagerank", "scatter")
			entries := 0
			for _, buf := range recvM {
				if err := foreachVF(buf, func(v int32, x float64) {
					mirror[v] = x
					entries++
				}); err != nil {
					return err
				}
			}
			r.Charge(r.Compute().ScanCost(entries, 12*entries))
			endScatter()
		}

		// Publish master values (each rank writes disjoint indices).
		for _, v := range myVerts {
			ranks[v] = pr[v]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats := cl.Stats()
	return &Result{
		Ranks:        ranks,
		Makespan:     cl.Makespan(),
		WireBytes:    stats.BytesOnWire,
		PerIteration: vtime.Duration(float64(cl.Makespan()) / float64(iters)),
	}, nil
}

// appendVF encodes one (vertex, float64) pair.
func appendVF(buf []byte, v int32, x float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
}

func foreachVF(buf []byte, fn func(v int32, x float64)) error {
	if len(buf)%12 != 0 {
		return fmt.Errorf("pagerank: value buffer of %d bytes", len(buf))
	}
	for len(buf) > 0 {
		v := int32(binary.LittleEndian.Uint32(buf))
		x := math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
		fn(v, x)
		buf = buf[12:]
	}
	return nil
}

// sortedBufs re-encodes each outbound buffer with entries sorted by vertex
// id so that map iteration order cannot leak into the wire format
// (determinism of both results and virtual time).
func sortedBufs(bufs [][]byte) [][]byte {
	for i, buf := range bufs {
		if len(buf) <= 12 {
			continue
		}
		type vf struct {
			v int32
			x float64
		}
		var items []vf
		_ = foreachVF(buf, func(v int32, x float64) {
			items = append(items, vf{v, x})
		})
		sort.Slice(items, func(a, b int) bool { return items[a].v < items[b].v })
		out := make([]byte, 0, len(buf))
		for _, it := range items {
			out = appendVF(out, it.v, it.x)
		}
		bufs[i] = out
	}
	return bufs
}
