// Package permute implements the stride-permutation-matrix formalism the
// paper uses to decouple distribution policies from generated code (§III-B).
//
// A distribution policy is expressed as the permutation matrix L^{km}_m,
// which performs a stride-by-m permutation on a vector of km elements:
//
//	x[i*k+j] -> x[j*m+i],  0 <= i < m, 0 <= j < k.
//
// The cyclic policy for n elements over p partitions is L^{n}_{p}; the block
// policy is the identity L^{n}_{n}. At code-generation time the distribute
// operator is bound to an abstract matrix; at runtime the policy and
// numPartitions parameters instantiate the concrete matrix, and each mapper
// applies the matrix–vector multiplication to its local elements.
package permute

import (
	"fmt"
)

// Matrix is a permutation matrix in a sparse row-index representation:
// dest[i] = src[Perm[i]]. Only bona fide permutations can be constructed.
type Matrix struct {
	perm []int // perm[newIndex] = oldIndex
	m    int   // the stride parameter of L^{km}_m (0 for custom matrices)
}

// Size returns the dimension of the matrix.
func (p *Matrix) Size() int { return len(p.perm) }

// Stride returns the m in L^{km}_m, or 0 if the matrix was not built by
// Stride/Identity.
func (p *Matrix) Stride() int { return p.m }

// String identifies the matrix in the paper's L notation.
func (p *Matrix) String() string {
	if p.m > 0 {
		return fmt.Sprintf("L^%d_%d", len(p.perm), p.m)
	}
	return fmt.Sprintf("P(%d)", len(p.perm))
}

// StrideMatrix builds L^{n}_{m}: the stride-by-m permutation of n elements.
// n need not be an exact multiple of m; the remainder elements keep the
// column-major walk the matrix defines (this matches distributing n elements
// cyclically over m partitions, the paper's L^4_3 example where 4 entries go
// to 3 partitions).
func StrideMatrix(n, m int) (*Matrix, error) {
	if n < 0 {
		return nil, fmt.Errorf("permute: negative size %d", n)
	}
	if m <= 0 {
		return nil, fmt.Errorf("permute: stride %d must be positive", m)
	}
	if m > n && n > 0 {
		m = n // stride beyond the vector degenerates to identity
	}
	perm := make([]int, n)
	// Column-major read of a k x m row-major layout, allowing a ragged last
	// column: output position t takes input index i*k... Enumerate outputs
	// in (i, j) order, i in [0,m), j walking the i-th residue class.
	t := 0
	for i := 0; i < m; i++ {
		for src := i; src < n; src += m {
			perm[t] = src
			t++
		}
	}
	return &Matrix{perm: perm, m: m}, nil
}

// Identity builds L^{n}_{n}, the block policy's matrix (no permutation).
func Identity(n int) (*Matrix, error) {
	if n < 0 {
		return nil, fmt.Errorf("permute: negative size %d", n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	mm := n
	if mm == 0 {
		mm = 1
	}
	return &Matrix{perm: perm, m: mm}, nil
}

// FromPerm builds a matrix from an explicit permutation (dest[i] =
// src[perm[i]]); it validates that perm is a permutation.
func FromPerm(perm []int) (*Matrix, error) {
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) {
			return nil, fmt.Errorf("permute: index %d out of range [0,%d)", v, len(perm))
		}
		if seen[v] {
			return nil, fmt.Errorf("permute: duplicate index %d", v)
		}
		seen[v] = true
	}
	return &Matrix{perm: append([]int(nil), perm...)}, nil
}

// Apply performs the matrix–vector multiplication y = Lx on a vector of
// indices [0,n): it returns the permuted order as destination indices. The
// result aliases no caller memory.
func (p *Matrix) Apply() []int {
	return append([]int(nil), p.perm...)
}

// ApplySlice permutes an arbitrary slice through the matrix:
// out[i] = in[perm[i]]. Generic so operators can permute records of any
// concrete type without boxing.
func ApplySlice[T any](p *Matrix, in []T) ([]T, error) {
	if len(in) != p.Size() {
		return nil, fmt.Errorf("permute: vector length %d does not match matrix size %d", len(in), p.Size())
	}
	out := make([]T, len(in))
	GatherInto(out, in, p.perm)
	return out, nil
}

// GatherInto is the gather kernel every permutation application in this
// package reduces to: dst[i] = src[perm[i]] for i in [0, len(perm)). It is
// exported so record-level sorts (the aspas radix passes, keyval's offset
// sorts) can route their reorder steps through the same machinery a
// distribution matrix uses, instead of growing private copies. perm indices
// are not validated — callers own permutations built by construction; dst
// must have at least len(perm) elements.
func GatherInto[T any, I ~int | ~int32](dst, src []T, perm []I) {
	for i, s := range perm {
		dst[i] = src[s]
	}
}

// Inverse returns the inverse permutation matrix.
func (p *Matrix) Inverse() *Matrix {
	inv := make([]int, len(p.perm))
	for i, src := range p.perm {
		inv[src] = i
	}
	return &Matrix{perm: inv}
}

// Compose returns the matrix equivalent to applying q first, then p.
func Compose(p, q *Matrix) (*Matrix, error) {
	if p.Size() != q.Size() {
		return nil, fmt.Errorf("permute: size mismatch %d vs %d", p.Size(), q.Size())
	}
	perm := make([]int, p.Size())
	for i := range perm {
		perm[i] = q.perm[p.perm[i]]
	}
	return &Matrix{perm: perm}, nil
}

// Dense materializes the permutation as a dense 0/1 matrix (row-major),
// useful for tests and for printing the matrices the paper draws in Fig. 6.
func (p *Matrix) Dense() [][]uint8 {
	n := p.Size()
	out := make([][]uint8, n)
	cells := make([]uint8, n*n)
	for i := range out {
		out[i], cells = cells[:n], cells[n:]
		out[i][p.perm[i]] = 1
	}
	return out
}
