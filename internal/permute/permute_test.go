package permute

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestStrideMatrixPaperFig6a(t *testing.T) {
	// Figure 6(a): L^4_2 permutes [x0 x1 x2 x3] -> [x0 x2 x1 x3].
	m, err := StrideMatrix(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplySlice(m, []string{"x0", "x1", "x2", "x3"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x0", "x2", "x1", "x3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("L^4_2 = %v, want %v", got, want)
	}
	if m.String() != "L^4_2" {
		t.Errorf("String() = %q", m.String())
	}
}

func TestStrideMatrixPaperFig6bBlock(t *testing.T) {
	// Figure 6(b): the block policy L^4_4 does not permute.
	m, err := StrideMatrix(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplySlice(m, []int{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{10, 20, 30, 40}) {
		t.Fatalf("L^4_4 permuted: %v", got)
	}
}

func TestStrideMatrixPaperL43(t *testing.T) {
	// §III-C: a mapper with 4 entries and 3 partitions generates L^4_3;
	// entries 0 and 3 land in partition 0, entry 1 in partition 1, entry 2
	// in partition 2 once the permuted vector is split contiguously.
	m, err := StrideMatrix(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplySlice(m, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 3, 1, 2}) {
		t.Fatalf("L^4_3 = %v, want [0 3 1 2]", got)
	}
}

func TestStrideMatrixL33Identity(t *testing.T) {
	// §III-C: L^3_3 "happens not to permute".
	m, err := StrideMatrix(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Apply(), []int{0, 1, 2}) {
		t.Fatalf("L^3_3 = %v", m.Apply())
	}
}

func TestStrideMatrixErrors(t *testing.T) {
	if _, err := StrideMatrix(-1, 2); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := StrideMatrix(4, 0); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := StrideMatrix(4, -3); err == nil {
		t.Error("negative stride accepted")
	}
}

func TestStrideBeyondSizeDegeneratesToIdentity(t *testing.T) {
	m, err := StrideMatrix(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Apply(), []int{0, 1, 2}) {
		t.Fatalf("L^3_10 = %v, want identity", m.Apply())
	}
}

func TestIdentity(t *testing.T) {
	m, err := Identity(5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Apply(), []int{0, 1, 2, 3, 4}) {
		t.Fatalf("Identity(5) = %v", m.Apply())
	}
	if _, err := Identity(-2); err == nil {
		t.Error("negative identity accepted")
	}
	z, err := Identity(0)
	if err != nil || z.Size() != 0 {
		t.Errorf("Identity(0): %v size %d", err, z.Size())
	}
}

func TestFromPermValidation(t *testing.T) {
	if _, err := FromPerm([]int{0, 2, 1}); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if _, err := FromPerm([]int{0, 0, 1}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := FromPerm([]int{0, 3}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := FromPerm([]int{-1, 0}); err == nil {
		t.Error("negative index accepted")
	}
}

func TestApplySliceLengthMismatch(t *testing.T) {
	m, _ := Identity(3)
	if _, err := ApplySlice(m, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	m, err := StrideMatrix(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int, 12)
	for i := range in {
		in[i] = i * 7
	}
	mid, err := ApplySlice(m, in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ApplySlice(m.Inverse(), mid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, in) {
		t.Fatalf("inverse did not undo permutation: %v", back)
	}
}

func TestCompose(t *testing.T) {
	p, _ := StrideMatrix(6, 2)
	q, _ := StrideMatrix(6, 3)
	pq, err := Compose(p, q)
	if err != nil {
		t.Fatal(err)
	}
	in := []string{"a", "b", "c", "d", "e", "f"}
	qOut, _ := ApplySlice(q, in)
	want, _ := ApplySlice(p, qOut)
	got, _ := ApplySlice(pq, in)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compose: got %v, want %v", got, want)
	}

	r, _ := Identity(4)
	if _, err := Compose(p, r); err == nil {
		t.Error("size mismatch accepted in Compose")
	}
}

func TestDenseIsPermutationMatrix(t *testing.T) {
	m, _ := StrideMatrix(5, 2)
	d := m.Dense()
	for i, row := range d {
		ones := 0
		for _, c := range row {
			ones += int(c)
		}
		if ones != 1 {
			t.Fatalf("row %d has %d ones", i, ones)
		}
	}
	for j := 0; j < 5; j++ {
		ones := 0
		for i := 0; i < 5; i++ {
			ones += int(d[i][j])
		}
		if ones != 1 {
			t.Fatalf("column %d has %d ones", j, ones)
		}
	}
}

// Property: StrideMatrix always yields a valid permutation, and applying it
// to [0..n) then bucketing contiguously reproduces cyclic assignment:
// element e lands in bucket e mod m.
func TestStrideCyclicProperty(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%64) + 1
		m := int(mRaw%8) + 1
		mat, err := StrideMatrix(n, m)
		if err != nil {
			return false
		}
		order := mat.Apply()
		seen := make([]bool, n)
		for _, v := range order {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		if m > n {
			m = n
		}
		// Contiguous split sizes: residue class i has ceil((n-i)/m) members.
		pos := 0
		for i := 0; i < m; i++ {
			classLen := (n - i + m - 1) / m
			for j := 0; j < classLen; j++ {
				if order[pos]%m != i {
					return false
				}
				pos++
			}
		}
		return pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Inverse(Inverse(p)) == p.
func TestDoubleInverseProperty(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%32) + 1
		m := int(mRaw%6) + 1
		mat, err := StrideMatrix(n, m)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(mat.Inverse().Inverse().Apply(), mat.Apply())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
