package permute_test

import (
	"fmt"

	"repro/internal/permute"
)

// ExampleStrideMatrix reproduces the paper's Figure 6(a): the cyclic policy
// for 4 entries over 2 partitions is the stride permutation L^4_2.
func ExampleStrideMatrix() {
	m, err := permute.StrideMatrix(4, 2)
	if err != nil {
		panic(err)
	}
	out, err := permute.ApplySlice(m, []string{"x0", "x1", "x2", "x3"})
	if err != nil {
		panic(err)
	}
	fmt.Println(m, out)
	// Output: L^4_2 [x0 x2 x1 x3]
}

// ExampleMatrix_Dense prints the 0/1 matrix the paper draws.
func ExampleMatrix_Dense() {
	m, _ := permute.StrideMatrix(4, 2)
	for _, row := range m.Dense() {
		fmt.Println(row)
	}
	// Output:
	// [1 0 0 0]
	// [0 0 1 0]
	// [0 1 0 0]
	// [0 0 0 1]
}
