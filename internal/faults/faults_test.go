package faults

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/vtime"
)

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse("42:crash=3@2ms,crash=1@100sends,drop=5%,dup=1%,delay=2%/200us,straggle=1x3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d", p.Seed)
	}
	c, ok := p.CrashFor(3)
	if !ok || c.At != 2*vtime.Millisecond || c.AfterSends != 0 {
		t.Fatalf("crash for rank 3 = %+v, %v", c, ok)
	}
	c, ok = p.CrashFor(1)
	if !ok || c.AfterSends != 100 {
		t.Fatalf("crash for rank 1 = %+v, %v", c, ok)
	}
	if _, ok := p.CrashFor(0); ok {
		t.Fatal("rank 0 should have no crash")
	}
	if p.Link.DropProb != 0.05 || p.Link.DupProb != 0.01 || p.Link.DelayProb != 0.02 {
		t.Fatalf("link = %+v", p.Link)
	}
	if p.Link.Delay != 200*vtime.Microsecond {
		t.Fatalf("delay = %v", p.Link.Delay)
	}
	if got := p.ComputeScale(1); got != 3 {
		t.Fatalf("ComputeScale(1) = %v", got)
	}
	if got := p.ComputeScale(0); got != 1 {
		t.Fatalf("ComputeScale(0) = %v", got)
	}
	if got := p.NetworkScale(0, 1); got != 3 {
		t.Fatalf("NetworkScale(0,1) = %v", got)
	}
	// The rendered form parses back to an equivalent plan.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip %q != %q", p2.String(), p.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"no-colon",
		"x:drop=5%",
		"1:crash=3",
		"1:crash=-1@2ms",
		"1:crash=2@2ms,crash=2@4ms",
		"1:drop=150%",
		"1:delay=5%",
		"1:straggle=1x0.5",
		"1:frob=1",
		"1:corrupt=120%",
		"1:ckptloss=-2",
		"1:ckptloss=x",
		"1:ckptloss=2,ckptloss=2",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

// TestParseUnknownKindListsValid: a typo'd event kind must name every valid
// kind in the error so the CLI user can self-correct.
func TestParseUnknownKindListsValid(t *testing.T) {
	_, err := Parse("1:corupt=5%")
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, kind := range ValidKinds {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error %q does not mention valid kind %q", err, kind)
		}
	}
}

func TestParseCorruptAndCkptLoss(t *testing.T) {
	p, err := Parse("9:corrupt=2%,ckptloss=3,ckptloss=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Link.CorruptProb != 0.02 {
		t.Fatalf("CorruptProb = %v", p.Link.CorruptProb)
	}
	if !p.CheckpointHostLost(3) || !p.CheckpointHostLost(1) || p.CheckpointHostLost(2) {
		t.Fatalf("CkptLoss = %v", p.CkptLoss)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip %q != %q", p2.String(), p.String())
	}
}

// TestCorruptionDamages: Apply always returns bytes different from the
// original for non-empty payloads (either a flipped bit or a shorter slice),
// and the same coordinates damage identically.
func TestCorruptionDamages(t *testing.T) {
	p := &Plan{Seed: 11, Link: Link{CorruptProb: 1}}
	payload := []byte("the quick brown fox")
	truncations := 0
	for seq := int64(0); seq < 256; seq++ {
		if !p.Corrupted(0, 1, seq, 0) {
			t.Fatalf("CorruptProb=1 did not corrupt seq %d", seq)
		}
		c := p.CorruptionFor(0, 1, seq, 0)
		got := c.Apply(payload)
		if c.Truncate {
			truncations++
			if len(got) >= len(payload) {
				t.Fatalf("truncation kept %d of %d bytes", len(got), len(payload))
			}
		} else {
			if len(got) != len(payload) || bytes.Equal(got, payload) {
				t.Fatalf("bit flip left payload intact (seq %d)", seq)
			}
		}
		again := p.CorruptionFor(0, 1, seq, 0).Apply(payload)
		if !bytes.Equal(got, again) {
			t.Fatalf("corruption not deterministic for seq %d", seq)
		}
	}
	if truncations == 0 || truncations == 256 {
		t.Fatalf("want a mix of truncations and bit flips, got %d/256 truncations", truncations)
	}
	if empty := p.CorruptionFor(0, 1, 0, 0).Apply(nil); len(empty) != 0 {
		t.Fatalf("corrupting an empty payload produced %d bytes", len(empty))
	}
}

// TestVerdictsDeterministic: the same coordinates always produce the same
// verdict, and different attempts decide independently.
func TestVerdictsDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, Link: Link{DropProb: 0.5}}
	for src := 0; src < 4; src++ {
		for seq := int64(0); seq < 64; seq++ {
			a := p.Dropped(src, 1, seq, 0)
			b := p.Dropped(src, 1, seq, 0)
			if a != b {
				t.Fatalf("verdict flapped for src=%d seq=%d", src, seq)
			}
		}
	}
	// A different seed must flip at least one verdict over a modest sample.
	q := &Plan{Seed: 8, Link: Link{DropProb: 0.5}}
	same := true
	for seq := int64(0); seq < 64; seq++ {
		if p.Dropped(0, 1, seq, 0) != q.Dropped(0, 1, seq, 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical drop patterns")
	}
}

// TestDropRate: the deterministic hash approximates the requested rate.
func TestDropRate(t *testing.T) {
	p := &Plan{Seed: 123, Link: Link{DropProb: 0.05}}
	n, dropped := 20000, 0
	for seq := 0; seq < n; seq++ {
		if p.Dropped(2, 3, int64(seq), 0) {
			dropped++
		}
	}
	rate := float64(dropped) / float64(n)
	if math.Abs(rate-0.05) > 0.01 {
		t.Fatalf("drop rate %.4f, want ~0.05", rate)
	}
}

// TestNilPlanIsFaultFree: a nil plan injects nothing (the fault-free path
// must not need nil checks at every call site).
func TestNilPlanIsFaultFree(t *testing.T) {
	var p *Plan
	if p.Dropped(0, 1, 0, 0) || p.Duplicated(0, 1, 0, 0) {
		t.Fatal("nil plan injected a message fault")
	}
	if p.ExtraDelay(0, 1, 0, 0) != 0 {
		t.Fatal("nil plan injected delay")
	}
	if p.ComputeScale(0) != 1 || p.NetworkScale(0, 1) != 1 {
		t.Fatal("nil plan scaled a node")
	}
	if _, ok := p.CrashFor(0); ok {
		t.Fatal("nil plan crashed a rank")
	}
	if p.Corrupted(0, 1, 0, 0) {
		t.Fatal("nil plan corrupted a payload")
	}
	if p.CheckpointHostLost(0) || p.CheckpointLossHosts() != nil {
		t.Fatal("nil plan lost checkpoint storage")
	}
}

func TestParseDiskKindsRoundTrip(t *testing.T) {
	p, err := Parse("11:enospc=30%,tornwrite=20%,diskrot=2%,slowdisk=1x4")
	if err != nil {
		t.Fatal(err)
	}
	if p.Disk.ENOSPCProb != 0.3 || p.Disk.TornProb != 0.2 || p.Disk.RotProb != 0.02 {
		t.Fatalf("disk = %+v", p.Disk)
	}
	if len(p.SlowDisks) != 1 || p.SlowDisks[0].Node != 1 || p.SlowDisks[0].Factor != 4 {
		t.Fatalf("slowdisks = %+v", p.SlowDisks)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip %q != %q", p2.String(), p.String())
	}
}

// TestENOSPCRetryRerolls pins the retry semantics: the decision is sticky per
// attempt but a later attempt draws afresh, so a store that backs off can
// find space that was not there before.
func TestENOSPCRetryRerolls(t *testing.T) {
	p := &Plan{Seed: 3, Disk: Disk{ENOSPCProb: 0.5}}
	sawChange := false
	for run := int64(0); run < 64 && !sawChange; run++ {
		if p.SpillENOSPC(0, run, 0, 0) != p.SpillENOSPC(0, run, 0, 1) {
			sawChange = true
		}
	}
	if !sawChange {
		t.Fatal("64 runs at 50%: attempt coordinate never changed the ENOSPC verdict")
	}
	// Determinism: the same coordinates always yield the same verdict.
	for attempt := 0; attempt < 4; attempt++ {
		if p.SpillENOSPC(2, 7, 1, attempt) != p.SpillENOSPC(2, 7, 1, attempt) {
			t.Fatal("same coordinates gave different verdicts")
		}
	}
}
