// Package faults describes deterministic fault-injection plans for the
// simulated cluster.
//
// A Plan schedules rank crashes (at a virtual time or after a number of
// sends), message-level perturbations (drop, duplicate, extra delay) and
// slow-node degradation (scaled compute/network models per node). Every
// probabilistic decision is a pure function of the plan seed and the message
// coordinates (src, dst, per-link sequence number, retry attempt), so a plan
// replays *exactly*: no shared RNG state exists, and goroutine scheduling
// cannot change which messages are dropped. That is what makes chaos runs
// byte-comparable against fault-free reference runs.
//
// Plans are built programmatically or parsed from the compact spec syntax the
// papar CLI exposes (see Parse).
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/vtime"
)

// Crash kills one rank. Whichever of the two triggers fires first wins:
// At (virtual clock reaches the deadline) or AfterSends (the rank has
// completed that many message sends). A zero trigger is unused; a Crash with
// both triggers zero fires immediately at the rank's first fault checkpoint.
type Crash struct {
	// Rank is the cluster rank to kill.
	Rank int
	// At is the virtual time at (or after) which the rank dies. Zero means
	// no time trigger.
	At vtime.Duration
	// AfterSends kills the rank once it has performed this many sends.
	// Zero means no send-count trigger.
	AfterSends int64
}

// Link perturbs point-to-point messages. Probabilities are evaluated
// independently per delivery attempt with the plan's deterministic hash.
type Link struct {
	// DropProb is the probability that one delivery attempt is lost in the
	// network. The transport retries with exponential backoff, so a dropped
	// message costs virtual time rather than correctness (until the retry
	// budget is exhausted).
	DropProb float64
	// DupProb is the probability a delivered message is duplicated on the
	// wire. The receiving mailbox deduplicates by sequence number, so
	// duplicates cost bandwidth only.
	DupProb float64
	// DelayProb is the probability a delivered message suffers Delay of
	// extra wire time.
	DelayProb float64
	// Delay is the extra latency added when DelayProb fires.
	Delay vtime.Duration
	// CorruptProb is the probability one delivery attempt arrives with a
	// corrupted payload (a flipped bit, or a truncation for a fraction of
	// corruptions). The transport's envelope checksum detects the damage at
	// the receiving NIC, which NACKs; the sender retransmits with the same
	// exponential backoff a drop pays. Empty payloads cannot be corrupted.
	CorruptProb float64
}

// Corruption describes how one delivery attempt's payload is damaged, derived
// deterministically from the message coordinates. Truncate=false flips the
// bit Bit (counted from the payload's first byte, LSB first); Truncate=true
// cuts the payload down to Keep bytes (Keep < original length).
type Corruption struct {
	Truncate bool
	Bit      int
	Keep     int
}

// Apply returns a damaged copy of payload (never the original slice, which
// the sender still owns). Payloads of length zero are returned unchanged —
// there is nothing to corrupt.
func (c Corruption) Apply(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	if c.Truncate {
		keep := c.Keep % len(payload)
		return append([]byte(nil), payload[:keep]...)
	}
	cp := append([]byte(nil), payload...)
	bit := c.Bit % (8 * len(cp))
	cp[bit/8] ^= 1 << (bit % 8)
	return cp
}

// Straggler degrades one node: every rank on the node runs its compute
// charges and its message transfers slower by the given factors.
type Straggler struct {
	// Node is the physical node index.
	Node int
	// ComputeFactor scales compute charges (2 = twice as slow). Values
	// below 1 are clamped to 1.
	ComputeFactor float64
	// NetworkFactor scales wire transfer times for messages the node's
	// ranks send or receive. Values below 1 are clamped to 1.
	NetworkFactor float64
}

// Disk holds spill-tier fault probabilities — the out-of-core disk path a
// rank writes cold keyval pages to. Decisions are keyed on (rank, write
// sequence / run, path, attempt) the same way link faults are keyed on
// message coordinates, so disk chaos replays exactly.
type Disk struct {
	// ENOSPCProb is the probability a new spill run finds one storage path
	// out of space. The decision is sticky per (rank, run, path): retrying
	// the same full path cannot help, so the store fails over to the buddy
	// path, and a run refused by both paths fails with a typed error.
	ENOSPCProb float64
	// TornProb is the probability one frame-write attempt is torn (only a
	// prefix reaches the disk). The store detects the short write, truncates
	// the torn tail, and retries with capped exponential backoff.
	TornProb float64
	// RotProb is the probability one stored frame replica has rotted by the
	// time it is read back. Rot is persistent — re-reading the same replica
	// yields the same damage — so recovery must come from the buddy replica,
	// and a frame whose every replica rotted is a typed integrity failure.
	RotProb float64
}

// SlowDisk degrades one node's spill tier: disk service time, normally fully
// overlapped with compute (zero virtual time), surfaces on the timeline
// scaled by Factor (1 = nominal un-overlapped disk, 4 = four times slower).
type SlowDisk struct {
	// Node is the physical node index.
	Node int
	// Factor scales the nominal disk service-time model. Values below 1 are
	// clamped to 1.
	Factor float64
}

// Plan is one deterministic fault schedule.
type Plan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// Crashes lists scheduled rank deaths.
	Crashes []Crash
	// Link holds message-level fault probabilities.
	Link Link
	// Stragglers lists degraded nodes.
	Stragglers []Straggler
	// CkptLoss lists ranks whose local checkpoint-replica storage is
	// destroyed: every replica the replicated CheckpointStore placed on
	// these ranks is unavailable at restore time, forcing a failover to the
	// surviving buddy copy. Composes with Crashes — crash a rank AND lose
	// its storage to model a node whose burst buffer dies with it.
	CkptLoss []int
	// Disk holds spill-tier fault probabilities.
	Disk Disk
	// SlowDisks lists nodes with degraded spill tiers.
	SlowDisks []SlowDisk
}

// CrashFor returns the crash scheduled for the rank, if any. When several
// crashes name one rank the earliest-firing spec is irrelevant — the first
// listed wins (plans should name each rank at most once; Parse enforces it).
func (p *Plan) CrashFor(rank int) (Crash, bool) {
	if p == nil {
		return Crash{}, false
	}
	for _, c := range p.Crashes {
		if c.Rank == rank {
			return c, true
		}
	}
	return Crash{}, false
}

// splitmix64 is the 64-bit finalizer used to derive independent uniform
// deviates from message coordinates. It is a bijection with good avalanche
// behaviour, which is all the fault plan needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform derives a deterministic deviate in [0,1) from the plan seed, a
// per-decision salt, and the message coordinates.
func (p *Plan) uniform(salt uint64, src, dst int, seq int64, attempt int) float64 {
	h := splitmix64(uint64(p.Seed) ^ salt)
	h = splitmix64(h ^ uint64(src)<<32 ^ uint64(uint32(dst)))
	h = splitmix64(h ^ uint64(seq))
	h = splitmix64(h ^ uint64(attempt))
	return float64(h>>11) / float64(1<<53)
}

// Decision salts — arbitrary distinct constants so drop/dup/delay/corrupt
// deviates are independent of one another.
const (
	saltDrop    = 0x647270 // "drp"
	saltDup     = 0x647570 // "dup"
	saltDelay   = 0x646c79 // "dly"
	saltCorrupt = 0x637074 // "cpt"
	saltCrptHow = 0x686f77 // "how"
	saltEnospc  = 0x656e6f // "eno"
	saltTorn    = 0x746f72 // "tor"
	saltTornLen = 0x746c6e // "tln"
	saltRot     = 0x726f74 // "rot"
	saltRotBit  = 0x726274 // "rbt"
)

// Dropped reports whether delivery attempt `attempt` of message `seq` on the
// src->dst link is lost.
func (p *Plan) Dropped(src, dst int, seq int64, attempt int) bool {
	if p == nil || p.Link.DropProb <= 0 {
		return false
	}
	return p.uniform(saltDrop, src, dst, seq, attempt) < p.Link.DropProb
}

// Duplicated reports whether the delivered message is duplicated on the wire.
func (p *Plan) Duplicated(src, dst int, seq int64, attempt int) bool {
	if p == nil || p.Link.DupProb <= 0 {
		return false
	}
	return p.uniform(saltDup, src, dst, seq, attempt) < p.Link.DupProb
}

// Corrupted reports whether delivery attempt `attempt` of message `seq` on
// the src->dst link arrives with a damaged payload.
func (p *Plan) Corrupted(src, dst int, seq int64, attempt int) bool {
	if p == nil || p.Link.CorruptProb <= 0 {
		return false
	}
	return p.uniform(saltCorrupt, src, dst, seq, attempt) < p.Link.CorruptProb
}

// CorruptionFor derives the deterministic damage spec for a corrupted
// attempt: one corruption in eight is a truncation, the rest flip a single
// bit. Bit and Keep are raw deviates; Corruption.Apply reduces them modulo
// the payload size so the same spec replays on any payload.
func (p *Plan) CorruptionFor(src, dst int, seq int64, attempt int) Corruption {
	h := splitmix64(uint64(p.Seed) ^ saltCrptHow)
	h = splitmix64(h ^ uint64(src)<<32 ^ uint64(uint32(dst)))
	h = splitmix64(h ^ uint64(seq))
	h = splitmix64(h ^ uint64(attempt))
	c := Corruption{Truncate: h&7 == 0}
	c.Bit = int((h >> 3) & 0x7fffffff)
	c.Keep = int((h >> 34) & 0x3fffffff)
	return c
}

// SpillENOSPC reports whether the rank's spill run `run` finds storage path
// `path` (0 primary, 1 buddy) out of space on write attempt `attempt`. The
// decision is sticky within an attempt (a full disk stays full while the
// store is looking at it, so it must fail over to the other path), but each
// backed-off retry draws afresh — space is reclaimed by other tenants over
// time, which is what the retry is waiting for.
func (p *Plan) SpillENOSPC(rank int, run int64, path, attempt int) bool {
	if p == nil || p.Disk.ENOSPCProb <= 0 {
		return false
	}
	return p.uniform(saltEnospc, rank, path, run, attempt) < p.Disk.ENOSPCProb
}

// SpillTorn reports whether write attempt `attempt` of the rank's spill
// frame `seq` on path `path` is torn, and returns the raw deviate the store
// reduces modulo the frame size to pick how many bytes survive. Each attempt
// draws independently, so the short-write check plus capped-backoff retry
// recovers unless the disk is persistently torn.
func (p *Plan) SpillTorn(rank int, seq int64, path, attempt int) (torn bool, keep int) {
	if p == nil || p.Disk.TornProb <= 0 {
		return false, 0
	}
	if p.uniform(saltTorn, rank, path, seq, attempt) >= p.Disk.TornProb {
		return false, 0
	}
	h := splitmix64(uint64(p.Seed) ^ saltTornLen)
	h = splitmix64(h ^ uint64(rank)<<32 ^ uint64(uint32(path)))
	h = splitmix64(h ^ uint64(seq))
	h = splitmix64(h ^ uint64(attempt))
	return true, int(h & 0x3fffffff)
}

// SpillRot reports whether replica `replica` of frame `frame` of the rank's
// spill run `run` has rotted on disk, and returns the raw bit deviate the
// reader reduces modulo the payload size. There is no attempt coordinate:
// rot is persistent, so re-reading the same replica replays the same damage
// and recovery must come from the buddy replica.
func (p *Plan) SpillRot(rank int, run int64, frame, replica int) (rotted bool, bit int) {
	if p == nil || p.Disk.RotProb <= 0 {
		return false, 0
	}
	seq := run<<20 | int64(frame&0xfffff)
	if p.uniform(saltRot, rank, replica, seq, 0) >= p.Disk.RotProb {
		return false, 0
	}
	h := splitmix64(uint64(p.Seed) ^ saltRotBit)
	h = splitmix64(h ^ uint64(rank)<<32 ^ uint64(uint32(replica)))
	h = splitmix64(h ^ uint64(seq))
	return true, int(h & 0x7fffffff)
}

// DiskScale returns the spill-tier slowdown factor for a node, or 0 when the
// node's disk is healthy. Zero is meaningful: a healthy spill tier is fully
// overlapped with compute and costs no virtual time, so only slowdisk-
// degraded nodes surface disk service time on the timeline.
func (p *Plan) DiskScale(node int) float64 {
	if p == nil {
		return 0
	}
	for _, s := range p.SlowDisks {
		if s.Node == node {
			if s.Factor < 1 {
				return 1
			}
			return s.Factor
		}
	}
	return 0
}

// CheckpointHostLost reports whether rank's local checkpoint-replica storage
// is destroyed by this plan.
func (p *Plan) CheckpointHostLost(rank int) bool {
	if p == nil {
		return false
	}
	for _, r := range p.CkptLoss {
		if r == rank {
			return true
		}
	}
	return false
}

// CheckpointLossHosts returns the ranks whose replica storage the plan
// destroys (nil when none).
func (p *Plan) CheckpointLossHosts() []int {
	if p == nil {
		return nil
	}
	return p.CkptLoss
}

// ExtraDelay returns any extra wire latency injected on the delivery.
func (p *Plan) ExtraDelay(src, dst int, seq int64, attempt int) vtime.Duration {
	if p == nil || p.Link.DelayProb <= 0 {
		return 0
	}
	if p.uniform(saltDelay, src, dst, seq, attempt) < p.Link.DelayProb {
		return p.Link.Delay
	}
	return 0
}

// ComputeScale returns the compute slowdown factor for a node (>= 1).
func (p *Plan) ComputeScale(node int) float64 {
	if p == nil {
		return 1
	}
	for _, s := range p.Stragglers {
		if s.Node == node {
			if s.ComputeFactor < 1 {
				return 1
			}
			return s.ComputeFactor
		}
	}
	return 1
}

// NetworkScale returns the wire slowdown factor for a transfer between two
// nodes: the worse of the two endpoints' degradations (>= 1).
func (p *Plan) NetworkScale(srcNode, dstNode int) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, s := range p.Stragglers {
		if (s.Node == srcNode || s.Node == dstNode) && s.NetworkFactor > f {
			f = s.NetworkFactor
		}
	}
	return f
}

// String renders the plan in the Parse syntax.
func (p *Plan) String() string {
	if p == nil {
		return "<no faults>"
	}
	var parts []string
	crashes := append([]Crash(nil), p.Crashes...)
	sort.Slice(crashes, func(i, j int) bool { return crashes[i].Rank < crashes[j].Rank })
	for _, c := range crashes {
		switch {
		case c.AfterSends > 0:
			parts = append(parts, fmt.Sprintf("crash=%d@%dsends", c.Rank, c.AfterSends))
		default:
			parts = append(parts, fmt.Sprintf("crash=%d@%s", c.Rank, c.At.Std()))
		}
	}
	if p.Link.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g%%", p.Link.DropProb*100))
	}
	if p.Link.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g%%", p.Link.DupProb*100))
	}
	if p.Link.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g%%/%s", p.Link.DelayProb*100, p.Link.Delay.Std()))
	}
	if p.Link.CorruptProb > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g%%", p.Link.CorruptProb*100))
	}
	for _, s := range p.Stragglers {
		parts = append(parts, fmt.Sprintf("straggle=%dx%g", s.Node, s.ComputeFactor))
	}
	for _, r := range p.CkptLoss {
		parts = append(parts, fmt.Sprintf("ckptloss=%d", r))
	}
	if p.Disk.ENOSPCProb > 0 {
		parts = append(parts, fmt.Sprintf("enospc=%g%%", p.Disk.ENOSPCProb*100))
	}
	if p.Disk.TornProb > 0 {
		parts = append(parts, fmt.Sprintf("tornwrite=%g%%", p.Disk.TornProb*100))
	}
	if p.Disk.RotProb > 0 {
		parts = append(parts, fmt.Sprintf("diskrot=%g%%", p.Disk.RotProb*100))
	}
	for _, s := range p.SlowDisks {
		parts = append(parts, fmt.Sprintf("slowdisk=%dx%g", s.Node, s.Factor))
	}
	return fmt.Sprintf("%d:%s", p.Seed, strings.Join(parts, ","))
}

// ValidKinds lists the event kinds Parse accepts, for error messages and
// usage strings.
var ValidKinds = []string{"crash", "drop", "dup", "delay", "corrupt", "straggle", "ckptloss",
	"enospc", "tornwrite", "diskrot", "slowdisk"}

// Parse reads the compact plan syntax the papar CLI uses:
//
//	PLAN    := SEED ":" EVENT ("," EVENT)*
//	EVENT   := "crash=" RANK "@" (DURATION | COUNT "sends")
//	         | "drop="  PERCENT
//	         | "dup="   PERCENT
//	         | "delay=" PERCENT "/" DURATION
//	         | "corrupt=" PERCENT
//	         | "straggle=" NODE "x" FACTOR
//	         | "ckptloss=" RANK
//	         | "enospc=" PERCENT
//	         | "tornwrite=" PERCENT
//	         | "diskrot=" PERCENT
//	         | "slowdisk=" NODE "x" FACTOR
//
// DURATION uses Go notation ("2ms", "150us"); PERCENT is "5%" or a bare
// fraction ("0.05"). Example:
//
//	42:crash=3@2ms,drop=5%,corrupt=1%,ckptloss=3,straggle=1x3
func Parse(spec string) (*Plan, error) {
	seedStr, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("faults: plan %q needs a \"seed:events\" form", spec)
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(seedStr), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("faults: bad seed %q: %v", seedStr, err)
	}
	p := &Plan{Seed: seed}
	seen := map[int]bool{}
	for _, ev := range strings.Split(rest, ",") {
		ev = strings.TrimSpace(ev)
		if ev == "" {
			continue
		}
		kind, arg, ok := strings.Cut(ev, "=")
		if !ok {
			return nil, fmt.Errorf("faults: event %q needs a \"kind=arg\" form", ev)
		}
		switch kind {
		case "crash":
			rankStr, trigger, ok := strings.Cut(arg, "@")
			if !ok {
				return nil, fmt.Errorf("faults: crash %q needs rank@trigger", arg)
			}
			rank, err := strconv.Atoi(rankStr)
			if err != nil || rank < 0 {
				return nil, fmt.Errorf("faults: bad crash rank %q", rankStr)
			}
			if seen[rank] {
				return nil, fmt.Errorf("faults: rank %d crashed twice in one plan", rank)
			}
			seen[rank] = true
			c := Crash{Rank: rank}
			if n, found := strings.CutSuffix(trigger, "sends"); found {
				sends, err := strconv.ParseInt(n, 10, 64)
				if err != nil || sends <= 0 {
					return nil, fmt.Errorf("faults: bad crash send count %q", trigger)
				}
				c.AfterSends = sends
			} else {
				d, err := time.ParseDuration(trigger)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faults: bad crash time %q", trigger)
				}
				c.At = vtime.Duration(d)
			}
			p.Crashes = append(p.Crashes, c)
		case "drop":
			if p.Link.DropProb, err = parsePercent(arg); err != nil {
				return nil, err
			}
		case "dup":
			if p.Link.DupProb, err = parsePercent(arg); err != nil {
				return nil, err
			}
		case "delay":
			probStr, durStr, ok := strings.Cut(arg, "/")
			if !ok {
				return nil, fmt.Errorf("faults: delay %q needs percent/duration", arg)
			}
			if p.Link.DelayProb, err = parsePercent(probStr); err != nil {
				return nil, err
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: bad delay duration %q", durStr)
			}
			p.Link.Delay = vtime.Duration(d)
		case "corrupt":
			if p.Link.CorruptProb, err = parsePercent(arg); err != nil {
				return nil, err
			}
		case "ckptloss":
			rank, err := strconv.Atoi(arg)
			if err != nil || rank < 0 {
				return nil, fmt.Errorf("faults: bad ckptloss rank %q", arg)
			}
			for _, r := range p.CkptLoss {
				if r == rank {
					return nil, fmt.Errorf("faults: rank %d's checkpoint storage lost twice in one plan", rank)
				}
			}
			p.CkptLoss = append(p.CkptLoss, rank)
		case "straggle":
			nodeStr, factorStr, ok := strings.Cut(arg, "x")
			if !ok {
				return nil, fmt.Errorf("faults: straggle %q needs nodexfactor", arg)
			}
			node, err := strconv.Atoi(nodeStr)
			if err != nil || node < 0 {
				return nil, fmt.Errorf("faults: bad straggler node %q", nodeStr)
			}
			factor, err := strconv.ParseFloat(factorStr, 64)
			if err != nil || factor < 1 {
				return nil, fmt.Errorf("faults: bad straggler factor %q (must be >= 1)", factorStr)
			}
			p.Stragglers = append(p.Stragglers, Straggler{
				Node: node, ComputeFactor: factor, NetworkFactor: factor,
			})
		case "enospc":
			if p.Disk.ENOSPCProb, err = parsePercent(arg); err != nil {
				return nil, err
			}
		case "tornwrite":
			if p.Disk.TornProb, err = parsePercent(arg); err != nil {
				return nil, err
			}
		case "diskrot":
			if p.Disk.RotProb, err = parsePercent(arg); err != nil {
				return nil, err
			}
		case "slowdisk":
			nodeStr, factorStr, ok := strings.Cut(arg, "x")
			if !ok {
				return nil, fmt.Errorf("faults: slowdisk %q needs nodexfactor", arg)
			}
			node, err := strconv.Atoi(nodeStr)
			if err != nil || node < 0 {
				return nil, fmt.Errorf("faults: bad slowdisk node %q", nodeStr)
			}
			factor, err := strconv.ParseFloat(factorStr, 64)
			if err != nil || factor < 1 {
				return nil, fmt.Errorf("faults: bad slowdisk factor %q (must be >= 1)", factorStr)
			}
			p.SlowDisks = append(p.SlowDisks, SlowDisk{Node: node, Factor: factor})
		default:
			return nil, fmt.Errorf("faults: unknown event kind %q (valid kinds: %s)",
				kind, strings.Join(ValidKinds, ", "))
		}
	}
	return p, nil
}

func parsePercent(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := false
	if v, found := strings.CutSuffix(s, "%"); found {
		s, pct = v, true
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: bad probability %q", s)
	}
	if pct {
		f /= 100
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("faults: probability %q outside [0,1]", s)
	}
	return f, nil
}
