// Package mpi provides an MPI-like message-passing interface on top of the
// simulated cluster (package cluster).
//
// The paper maps PaPar onto MR-MPI and raw MPI (Isend/Irecv/Wait); Go has no
// standard MPI binding, so this package is the custom distribution layer the
// reproduction bands call for. It offers the subset the paper's backends
// need: point-to-point (blocking and non-blocking), barriers, broadcast,
// gather(v), allgather, alltoall(v), reduce, allreduce, and exclusive scan.
//
// Collectives are implemented with the standard logarithmic algorithms
// (binomial-tree broadcast/reduce, recursive pattern barriers) so that the
// simulated virtual time shows realistic O(log P) scaling behaviour.
package mpi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/vtime"
)

// AnySource matches any sending rank in Recv.
const AnySource = cluster.AnySource

// Comm is a communicator: a rank's handle onto a group of ranks. A fresh
// communicator (NewComm) spans every cluster rank; Shrink derives a smaller
// communicator excluding dead ranks, the survivors' handle for resilient
// re-execution (the MPI_Comm_shrink semantic). Ranks inside a communicator
// are group indices in [0, Size()); the group maps them to cluster ids.
//
// Tags used by collectives live in a reserved high range; user
// point-to-point tags must be below tagCollBase.
type Comm struct {
	rank *cluster.Rank
	// group maps group index -> cluster rank id, ascending.
	group []int
	// myIdx is this rank's group index.
	myIdx int
	// rev maps cluster rank id -> group index.
	rev map[int]int
}

// tagCollBase is the first tag reserved for collective internals.
const tagCollBase = 1 << 24

// Tags for the collective algorithms. Each collective call site uses a
// distinct tag so that back-to-back collectives cannot mismatch. SPMD
// programs execute collectives in the same order on every rank, so a static
// tag per collective type suffices (messages of successive calls of the same
// type cannot overtake within a (src,tag) pair because mailbox order is
// FIFO).
const (
	tagBarrier = tagCollBase + iota
	tagBcast
	tagGather
	tagAllgather
	tagAlltoall
	tagReduce
	tagScan
	tagProbeCount
)

// NewComm wraps a cluster rank in a communicator spanning all ranks.
func NewComm(r *cluster.Rank) *Comm {
	group := make([]int, r.Size())
	for i := range group {
		group[i] = i
	}
	return newGroupComm(r, group)
}

func newGroupComm(r *cluster.Rank, group []int) *Comm {
	c := &Comm{rank: r, group: group, myIdx: -1, rev: make(map[int]int, len(group))}
	for i, id := range group {
		c.rev[id] = i
		if id == r.ID() {
			c.myIdx = i
		}
	}
	return c
}

// Shrink derives a communicator over this one's group minus the given dead
// cluster ranks — the survivors' handle for resilient re-execution after a
// failure. All survivors must call it with the same dead set (they learn it
// from the shared failure detector, so they do). It returns an error if this
// rank itself is in the dead set.
func (c *Comm) Shrink(dead []int) (*Comm, error) {
	isDead := make(map[int]bool, len(dead))
	for _, d := range dead {
		isDead[d] = true
	}
	if isDead[c.rank.ID()] {
		return nil, fmt.Errorf("mpi: rank %d cannot shrink a communicator it is dead in", c.rank.ID())
	}
	group := make([]int, 0, len(c.group))
	for _, id := range c.group {
		if !isDead[id] {
			group = append(group, id)
		}
	}
	return newGroupComm(c.rank, group), nil
}

// Group returns the cluster rank ids in this communicator, ascending. The
// slice is shared; do not modify it.
func (c *Comm) Group() []int { return c.group }

// Rank returns this process's group index.
func (c *Comm) Rank() int { return c.myIdx }

// Size returns the number of ranks in the group.
func (c *Comm) Size() int { return len(c.group) }

// Cluster exposes the underlying simulated rank (for clock charging).
func (c *Comm) Cluster() *cluster.Rank { return c.rank }

// send/recv translate group indices to cluster ranks for the transport.
func (c *Comm) send(dstIdx, tag int, payload []byte) error {
	if dstIdx < 0 || dstIdx >= len(c.group) {
		return fmt.Errorf("mpi: send to invalid group rank %d (size %d)", dstIdx, len(c.group))
	}
	return c.rank.Send(c.group[dstIdx], tag, payload)
}

func (c *Comm) recv(srcIdx, tag int, timeout vtime.Duration) ([]byte, int, error) {
	src := cluster.AnySource
	if srcIdx != AnySource {
		if srcIdx < 0 || srcIdx >= len(c.group) {
			return nil, 0, fmt.Errorf("mpi: recv from invalid group rank %d (size %d)", srcIdx, len(c.group))
		}
		src = c.group[srcIdx]
	}
	var payload []byte
	var from int
	var err error
	if timeout > 0 {
		payload, from, err = c.rank.RecvTimeout(src, tag, timeout)
	} else {
		payload, from, err = c.rank.Recv(src, tag)
	}
	if err != nil {
		return nil, 0, err
	}
	idx, ok := c.rev[from]
	if !ok {
		return nil, 0, fmt.Errorf("mpi: received message from rank %d outside the group", from)
	}
	return payload, idx, nil
}

// Send sends payload to group rank dst with a user tag (must be < 2^24).
func (c *Comm) Send(dst, tag int, payload []byte) error {
	if tag >= tagCollBase || tag < 0 {
		return fmt.Errorf("mpi: user tag %d out of range [0, %d)", tag, tagCollBase)
	}
	return c.send(dst, tag, payload)
}

// Recv blocks for a message from group rank src (or AnySource) with the
// given tag and returns the payload and actual source (as a group index).
func (c *Comm) Recv(src, tag int) ([]byte, int, error) {
	if tag >= tagCollBase || tag < 0 {
		return nil, 0, fmt.Errorf("mpi: user tag %d out of range [0, %d)", tag, tagCollBase)
	}
	return c.recv(src, tag, 0)
}

// RecvTimeout is Recv with an explicit virtual-time failure-detection
// deadline (see cluster.Rank.RecvTimeout): if the peer is dead or the epoch
// is revoked, it fails fast with a typed error after charging the deadline.
func (c *Comm) RecvTimeout(src, tag int, timeout vtime.Duration) ([]byte, int, error) {
	if tag >= tagCollBase || tag < 0 {
		return nil, 0, fmt.Errorf("mpi: user tag %d out of range [0, %d)", tag, tagCollBase)
	}
	return c.recv(src, tag, timeout)
}

// Request is a handle for a non-blocking operation, completed by Wait.
type Request struct {
	done    bool
	isRecv  bool
	comm    *Comm
	src     int
	tag     int
	payload []byte
	outSrc  int
	err     error
}

// Isend starts a non-blocking send. The simulated transport is eager and
// buffered, so the send completes immediately; the Request exists for
// API parity with the paper's "MPI non-blocking interfaces (Isend, Irecv,
// and Wait)".
func (c *Comm) Isend(dst, tag int, payload []byte) *Request {
	err := c.Send(dst, tag, payload)
	return &Request{done: true, comm: c, err: err}
}

// Irecv starts a non-blocking receive; Wait blocks until it is matched.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{isRecv: true, comm: c, src: src, tag: tag}
}

// Wait completes the request. For receives it returns the payload and the
// actual source rank.
func (r *Request) Wait() ([]byte, int, error) {
	if r.done {
		return r.payload, r.outSrc, r.err
	}
	r.done = true
	if r.isRecv {
		r.payload, r.outSrc, r.err = r.comm.Recv(r.src, r.tag)
	}
	return r.payload, r.outSrc, r.err
}

// WaitAll completes all requests, returning the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Barrier blocks until every rank has entered it. Dissemination algorithm:
// log2(P) rounds of pairwise exchange.
func (c *Comm) Barrier() error {
	p, me := c.Size(), c.Rank()
	for dist := 1; dist < p; dist *= 2 {
		dst := (me + dist) % p
		src := (me - dist + p) % p
		if err := c.send(dst, tagBarrier, nil); err != nil {
			return err
		}
		if _, _, err := c.recv(src, tagBarrier, 0); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts buf from root to every rank; every rank returns the
// broadcast payload. Binomial tree.
func (c *Comm) Bcast(root int, buf []byte) ([]byte, error) {
	p, me := c.Size(), c.Rank()
	if root < 0 || root >= p {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	// Re-index so root is virtual rank 0. Every non-root receives exactly
	// once, from the vrank obtained by clearing its highest set bit.
	vrank := (me - root + p) % p
	if vrank != 0 {
		hb := 1
		for hb*2 <= vrank {
			hb *= 2
		}
		src := (vrank - hb + root) % p
		payload, _, err := c.recv(src, tagBcast, 0)
		if err != nil {
			return nil, err
		}
		buf = payload
	}
	// Forward down the binomial tree: vrank v sends to v+mask for every
	// power-of-two mask > v that stays in range.
	for mask := 1; mask < p; mask *= 2 {
		if vrank < mask && vrank+mask < p {
			dst := (vrank + mask + root) % p
			if err := c.send(dst, tagBcast, buf); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// Gather collects each rank's payload at root. Root receives a slice indexed
// by rank; non-roots receive nil.
func (c *Comm) Gather(root int, payload []byte) ([][]byte, error) {
	p, me := c.Size(), c.Rank()
	if root < 0 || root >= p {
		return nil, fmt.Errorf("mpi: gather root %d out of range", root)
	}
	if me != root {
		return nil, c.send(root, tagGather, payload)
	}
	out := make([][]byte, p)
	out[me] = payload
	for i := 0; i < p; i++ {
		if i == me {
			continue
		}
		b, _, err := c.recv(i, tagGather, 0)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// Allgather gathers every rank's payload on every rank.
func (c *Comm) Allgather(payload []byte) ([][]byte, error) {
	const root = 0
	parts, err := c.Gather(root, payload)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.Rank() == root {
		packed = packSlices(parts)
	}
	packed, err = c.Bcast(root, packed)
	if err != nil {
		return nil, err
	}
	return unpackSlices(packed)
}

// Alltoall exchanges sendBuf[i] -> rank i; returns recv indexed by source
// rank. This is the shuffle primitive MapReduce's aggregate step uses.
func (c *Comm) Alltoall(sendBuf [][]byte) ([][]byte, error) {
	p, me := c.Size(), c.Rank()
	if len(sendBuf) != p {
		return nil, fmt.Errorf("mpi: alltoall needs %d buffers, got %d", p, len(sendBuf))
	}
	recv := make([][]byte, p)
	recv[me] = sendBuf[me]
	// Post every send first, then drain the receives — the non-blocking
	// pattern real MPI all-to-alls use, which lets wire latencies overlap
	// instead of serializing across the P-1 exchanges.
	for k := 1; k < p; k++ {
		dst := (me + k) % p
		if err := c.send(dst, tagAlltoall, sendBuf[dst]); err != nil {
			return nil, err
		}
	}
	for k := 1; k < p; k++ {
		src := (me - k + p) % p
		b, _, err := c.recv(src, tagAlltoall, 0)
		if err != nil {
			return nil, err
		}
		recv[src] = b
	}
	return recv, nil
}

// sendPages/recvPages translate group indices to cluster ranks for the
// vectored transport (any tag; the exported wrappers enforce user-tag rules).
func (c *Comm) sendPages(dstIdx, tag int, pages [][]byte) error {
	if dstIdx < 0 || dstIdx >= len(c.group) {
		return fmt.Errorf("mpi: send to invalid group rank %d (size %d)", dstIdx, len(c.group))
	}
	return c.rank.SendPages(c.group[dstIdx], tag, pages)
}

func (c *Comm) recvPages(srcIdx, tag int) ([][]byte, int, error) {
	src := cluster.AnySource
	if srcIdx != AnySource {
		if srcIdx < 0 || srcIdx >= len(c.group) {
			return nil, 0, fmt.Errorf("mpi: recv from invalid group rank %d (size %d)", srcIdx, len(c.group))
		}
		src = c.group[srcIdx]
	}
	pages, from, err := c.rank.RecvPages(src, tag)
	if err != nil {
		return nil, 0, err
	}
	idx, ok := c.rev[from]
	if !ok {
		return nil, 0, fmt.Errorf("mpi: received message from rank %d outside the group", from)
	}
	return pages, idx, nil
}

// SendPages sends a vectored payload — delivered as one message whose
// logical bytes are the concatenation of the page slices — to group rank dst
// (see cluster.Rank.SendPages). Tag rules match Send.
func (c *Comm) SendPages(dst, tag int, pages [][]byte) error {
	if tag >= tagCollBase || tag < 0 {
		return fmt.Errorf("mpi: user tag %d out of range [0, %d)", tag, tagCollBase)
	}
	return c.sendPages(dst, tag, pages)
}

// RecvPages receives one vectored message from group rank src (or AnySource)
// and returns its page vector and the actual source as a group index. A
// contiguous message comes back as a one-page vector.
func (c *Comm) RecvPages(src, tag int) ([][]byte, int, error) {
	if tag >= tagCollBase || tag < 0 {
		return nil, 0, fmt.Errorf("mpi: user tag %d out of range [0, %d)", tag, tagCollBase)
	}
	return c.recvPages(src, tag)
}

// AlltoallPages is the vectored all-to-all behind the batched shuffle:
// sendBuf[i] is the page set bound for rank i, delivered as ONE framed
// message per (src,dst) pair regardless of page count. Send and receive
// orders mirror Alltoall exactly — (me+k)%p sends then (me-k+p)%p receives —
// so a run whose page sets are all singletons is charge-identical to
// Alltoall of the same bytes on the simulated timeline. The local page set
// passes through untouched.
func (c *Comm) AlltoallPages(sendBuf [][][]byte) ([][][]byte, error) {
	p, me := c.Size(), c.Rank()
	if len(sendBuf) != p {
		return nil, fmt.Errorf("mpi: alltoall needs %d buffers, got %d", p, len(sendBuf))
	}
	recv := make([][][]byte, p)
	recv[me] = sendBuf[me]
	for k := 1; k < p; k++ {
		dst := (me + k) % p
		if err := c.sendPages(dst, tagAlltoall, sendBuf[dst]); err != nil {
			return nil, err
		}
	}
	for k := 1; k < p; k++ {
		src := (me - k + p) % p
		pages, _, err := c.recvPages(src, tagAlltoall)
		if err != nil {
			return nil, err
		}
		recv[src] = pages
	}
	return recv, nil
}

// ReduceFunc combines two partial values into one.
type ReduceFunc func(a, b []byte) []byte

// Reduce folds every rank's payload at root with fn (associative,
// commutative not required: combination is done in rank order along a
// binomial tree with ordered operands).
func (c *Comm) Reduce(root int, payload []byte, fn ReduceFunc) ([]byte, error) {
	p := c.Size()
	if root < 0 || root >= p {
		return nil, fmt.Errorf("mpi: reduce root %d out of range", root)
	}
	me := c.Rank()
	vrank := (me - root + p) % p
	acc := payload
	for mask := 1; mask < p; mask *= 2 {
		if vrank&mask != 0 {
			dst := (vrank - mask + root) % p
			if err := c.send(dst, tagReduce, acc); err != nil {
				return nil, err
			}
			acc = nil
			break
		}
		if vrank+mask < p {
			src := (vrank + mask + root) % p
			b, _, err := c.recv(src, tagReduce, 0)
			if err != nil {
				return nil, err
			}
			acc = fn(acc, b)
		}
	}
	if me == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce reduces and broadcasts the result to all ranks.
func (c *Comm) Allreduce(payload []byte, fn ReduceFunc) ([]byte, error) {
	const root = 0
	res, err := c.Reduce(root, payload, fn)
	if err != nil {
		return nil, err
	}
	return c.Bcast(root, res)
}

// ExscanInt64 computes the exclusive prefix sum of v across ranks: rank i
// receives sum of v on ranks < i (0 on rank 0). The total is also returned on
// every rank. Used for assigning global output offsets.
func (c *Comm) ExscanInt64(v int64) (prefix, total int64, err error) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	parts, err := c.Allgather(buf)
	if err != nil {
		return 0, 0, err
	}
	for i, b := range parts {
		x := int64(binary.LittleEndian.Uint64(b))
		if i < c.Rank() {
			prefix += x
		}
		total += x
	}
	return prefix, total, nil
}

// packSlices frames a slice-of-slices into one buffer.
func packSlices(parts [][]byte) []byte {
	n := 4
	for _, p := range parts {
		n += 4 + len(p)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(parts)))
	for _, p := range parts {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = append(out, p...)
	}
	return out
}

func unpackSlices(buf []byte) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: short packed buffer (%d bytes)", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	prealloc := n
	if prealloc > 4096 { // untrusted count; append grows as needed
		prealloc = 4096
	}
	out := make([][]byte, 0, prealloc)
	for i := uint32(0); i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("mpi: truncated packed buffer at part %d", i)
		}
		l := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < l {
			return nil, fmt.Errorf("mpi: truncated payload at part %d", i)
		}
		out = append(out, buf[:l:l])
		buf = buf[l:]
	}
	return out, nil
}
