package mpi

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// TestShrinkCollectives: a shrunk communicator runs the full collective set
// among the survivors while the excluded ranks sit out.
func TestShrinkCollectives(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig(3)) // 6 ranks
	dead := []int{1, 4}
	_, err := c.Run(func(r *cluster.Rank) error {
		if r.ID() == 1 || r.ID() == 4 {
			return nil // not crashed, just not participating
		}
		comm, err := NewComm(r).Shrink(dead)
		if err != nil {
			return err
		}
		if got := comm.Group(); !reflect.DeepEqual(got, []int{0, 2, 3, 5}) {
			return fmt.Errorf("group = %v", got)
		}
		if comm.Size() != 4 {
			return fmt.Errorf("size = %d", comm.Size())
		}
		if err := comm.Barrier(); err != nil {
			return err
		}
		all, err := comm.Allgather([]byte{byte(r.ID())})
		if err != nil {
			return err
		}
		want := [][]byte{{0}, {2}, {3}, {5}}
		if !reflect.DeepEqual(all, want) {
			return fmt.Errorf("allgather = %v, want %v", all, want)
		}
		sum, err := comm.Allreduce([]byte{byte(r.ID())}, func(a, b []byte) []byte {
			return []byte{a[0] + b[0]}
		})
		if err != nil {
			return err
		}
		if sum[0] != 0+2+3+5 {
			return fmt.Errorf("allreduce = %d", sum[0])
		}
		// Alltoall among survivors, indexed by group position.
		bufs := make([][]byte, comm.Size())
		for i := range bufs {
			bufs[i] = []byte{byte(comm.Rank()*10 + i)}
		}
		recv, err := comm.Alltoall(bufs)
		if err != nil {
			return err
		}
		for i, b := range recv {
			if want := byte(i*10 + comm.Rank()); !bytes.Equal(b, []byte{want}) {
				return fmt.Errorf("alltoall[%d] = %v, want %v", i, b, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShrinkOfShrink: shrinking twice composes (multi-round recovery).
func TestShrinkOfShrink(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig(2)) // 4 ranks
	_, err := c.Run(func(r *cluster.Rank) error {
		if r.ID() == 3 {
			return nil
		}
		comm, err := NewComm(r).Shrink([]int{3})
		if err != nil {
			return err
		}
		if r.ID() == 1 {
			return nil
		}
		comm, err = comm.Shrink([]int{1})
		if err != nil {
			return err
		}
		if got := comm.Group(); !reflect.DeepEqual(got, []int{0, 2}) {
			return fmt.Errorf("group = %v", got)
		}
		return comm.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShrinkDeadSelf: a rank in the dead set cannot shrink around itself.
func TestShrinkDeadSelf(t *testing.T) {
	c := cluster.New(cluster.DefaultConfig(1))
	_, err := c.Run(func(r *cluster.Rank) error {
		if r.ID() != 0 {
			return nil
		}
		if _, err := NewComm(r).Shrink([]int{0}); err == nil {
			return fmt.Errorf("Shrink accepted its own rank in the dead set")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
