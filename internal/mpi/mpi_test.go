package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// runSPMD executes body on a fresh cluster with the given number of nodes
// (2 ranks each) and fails the test on any rank error.
func runSPMD(t *testing.T, nodes int, body func(c *Comm) error) {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(nodes))
	_, err := cl.Run(func(r *cluster.Rank) error {
		return body(NewComm(r))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	runSPMD(t, 1, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 42, []byte("hello"))
		}
		b, src, err := c.Recv(0, 42)
		if err != nil {
			return err
		}
		if src != 0 || string(b) != "hello" {
			return fmt.Errorf("got %q from %d", b, src)
		}
		return nil
	})
}

func TestUserTagRangeEnforced(t *testing.T) {
	runSPMD(t, 1, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(1, tagCollBase, nil); err == nil {
			return fmt.Errorf("send with reserved tag succeeded")
		}
		if err := c.Send(1, -1, nil); err == nil {
			return fmt.Errorf("send with negative tag succeeded")
		}
		if _, _, err := c.Recv(1, tagCollBase+5); err == nil {
			return fmt.Errorf("recv with reserved tag succeeded")
		}
		return nil
	})
}

func TestIsendIrecvWait(t *testing.T) {
	runSPMD(t, 1, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 1, []byte("async"))
			_, _, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 1)
		b, src, err := req.Wait()
		if err != nil {
			return err
		}
		if src != 0 || string(b) != "async" {
			return fmt.Errorf("irecv got %q from %d", b, src)
		}
		// Wait must be idempotent.
		b2, _, err := req.Wait()
		if err != nil || string(b2) != "async" {
			return fmt.Errorf("second Wait: %q, %v", b2, err)
		}
		return nil
	})
}

func TestWaitAll(t *testing.T) {
	runSPMD(t, 2, func(c *Comm) error {
		n := c.Size()
		if c.Rank() == 0 {
			reqs := make([]*Request, 0, n-1)
			for i := 1; i < n; i++ {
				reqs = append(reqs, c.Irecv(i, 2))
			}
			if err := WaitAll(reqs...); err != nil {
				return err
			}
			for i, r := range reqs {
				b, _, _ := r.Wait()
				if want := byte(i + 1); b[0] != want {
					return fmt.Errorf("req %d payload %d, want %d", i, b[0], want)
				}
			}
			return nil
		}
		return WaitAll(c.Isend(0, 2, []byte{byte(c.Rank())}))
	})
}

func TestBarrierCompletes(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 8} {
		runSPMD(t, nodes, func(c *Comm) error {
			for i := 0; i < 3; i++ {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5, 8} {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			runSPMD(t, nodes, func(c *Comm) error {
				for root := 0; root < c.Size(); root++ {
					var buf []byte
					if c.Rank() == root {
						buf = []byte(fmt.Sprintf("payload-from-%d", root))
					}
					got, err := c.Bcast(root, buf)
					if err != nil {
						return err
					}
					want := fmt.Sprintf("payload-from-%d", root)
					if string(got) != want {
						return fmt.Errorf("rank %d bcast root %d: got %q", c.Rank(), root, got)
					}
				}
				return nil
			})
		})
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	runSPMD(t, 1, func(c *Comm) error {
		if _, err := c.Bcast(99, nil); err == nil {
			return fmt.Errorf("bcast with bad root succeeded")
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	runSPMD(t, 3, func(c *Comm) error {
		payload := []byte{byte(c.Rank() * 3)}
		parts, err := c.Gather(2, payload)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if parts != nil {
				return fmt.Errorf("non-root got parts")
			}
			return nil
		}
		if len(parts) != c.Size() {
			return fmt.Errorf("root got %d parts, want %d", len(parts), c.Size())
		}
		for i, p := range parts {
			if p[0] != byte(i*3) {
				return fmt.Errorf("part %d = %d, want %d", i, p[0], i*3)
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		runSPMD(t, nodes, func(c *Comm) error {
			parts, err := c.Allgather([]byte(fmt.Sprintf("r%d", c.Rank())))
			if err != nil {
				return err
			}
			if len(parts) != c.Size() {
				return fmt.Errorf("got %d parts", len(parts))
			}
			for i, p := range parts {
				if want := fmt.Sprintf("r%d", i); string(p) != want {
					return fmt.Errorf("part %d = %q, want %q", i, p, want)
				}
			}
			return nil
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 8} {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			runSPMD(t, nodes, func(c *Comm) error {
				p := c.Size()
				send := make([][]byte, p)
				for i := range send {
					send[i] = []byte(fmt.Sprintf("%d->%d", c.Rank(), i))
				}
				recv, err := c.Alltoall(send)
				if err != nil {
					return err
				}
				for i, b := range recv {
					if want := fmt.Sprintf("%d->%d", i, c.Rank()); string(b) != want {
						return fmt.Errorf("recv[%d] = %q, want %q", i, b, want)
					}
				}
				return nil
			})
		})
	}
}

func TestAlltoallWrongBufferCount(t *testing.T) {
	runSPMD(t, 1, func(c *Comm) error {
		_, err := c.Alltoall(make([][]byte, 1)) // size is 2
		if c.Rank() == 0 && err == nil {
			return fmt.Errorf("alltoall accepted wrong buffer count")
		}
		// Other ranks also error; both fine. Consume nothing further.
		if err == nil {
			return fmt.Errorf("alltoall accepted wrong buffer count")
		}
		return nil
	})
}

func sumReduce(a, b []byte) []byte {
	var x, y int64
	if a != nil {
		x = int64(binary.LittleEndian.Uint64(a))
	}
	if b != nil {
		y = int64(binary.LittleEndian.Uint64(b))
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(x+y))
	return out
}

func TestReduceSum(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 8} {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			runSPMD(t, nodes, func(c *Comm) error {
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, uint64(c.Rank()+1))
				res, err := c.Reduce(0, buf, sumReduce)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					p := int64(c.Size())
					want := p * (p + 1) / 2
					got := int64(binary.LittleEndian.Uint64(res))
					if got != want {
						return fmt.Errorf("reduce sum = %d, want %d", got, want)
					}
				} else if res != nil {
					return fmt.Errorf("non-root got reduce result")
				}
				return nil
			})
		})
	}
}

func TestAllreduce(t *testing.T) {
	runSPMD(t, 4, func(c *Comm) error {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(c.Rank()+1))
		res, err := c.Allreduce(buf, sumReduce)
		if err != nil {
			return err
		}
		p := int64(c.Size())
		want := p * (p + 1) / 2
		if got := int64(binary.LittleEndian.Uint64(res)); got != want {
			return fmt.Errorf("rank %d allreduce = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
}

func TestExscan(t *testing.T) {
	runSPMD(t, 4, func(c *Comm) error {
		v := int64(c.Rank() + 1)
		prefix, total, err := c.ExscanInt64(v)
		if err != nil {
			return err
		}
		var wantPrefix int64
		for i := 0; i < c.Rank(); i++ {
			wantPrefix += int64(i + 1)
		}
		p := int64(c.Size())
		if prefix != wantPrefix || total != p*(p+1)/2 {
			return fmt.Errorf("rank %d exscan = (%d,%d), want (%d,%d)",
				c.Rank(), prefix, total, wantPrefix, p*(p+1)/2)
		}
		return nil
	})
}

func TestPackUnpackSlices(t *testing.T) {
	in := [][]byte{[]byte("a"), nil, []byte("longer payload"), {}}
	out, err := unpackSlices(packSlices(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d parts, want %d", len(out), len(in))
	}
	for i := range in {
		if !bytes.Equal(out[i], in[i]) {
			t.Errorf("part %d = %q, want %q", i, out[i], in[i])
		}
	}
}

func TestUnpackSlicesCorrupt(t *testing.T) {
	for _, buf := range [][]byte{
		nil,
		{1, 2},
		{2, 0, 0, 0, 5, 0, 0, 0, 'a'},           // declared 5-byte part, 1 present
		{1, 0, 0, 0, 1, 0},                      // truncated length header
		append([]byte{1, 0, 0, 0}, []byte{}...), // missing part header entirely
	} {
		if _, err := unpackSlices(buf); err == nil {
			t.Errorf("unpackSlices(%v) succeeded, want error", buf)
		}
	}
}

func TestBackToBackCollectivesMixedRoots(t *testing.T) {
	// Regression guard for tag-matching bugs: interleave bcasts with
	// different roots, reduces and barriers with no intervening sync.
	runSPMD(t, 4, func(c *Comm) error {
		for iter := 0; iter < 5; iter++ {
			for root := 0; root < c.Size(); root += 3 {
				var b []byte
				if c.Rank() == root {
					b = []byte{byte(iter), byte(root)}
				}
				got, err := c.Bcast(root, b)
				if err != nil {
					return err
				}
				if got[0] != byte(iter) || got[1] != byte(root) {
					return fmt.Errorf("iter %d root %d: got %v", iter, root, got)
				}
			}
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, 1)
			res, err := c.Allreduce(buf, sumReduce)
			if err != nil {
				return err
			}
			if got := int64(binary.LittleEndian.Uint64(res)); got != int64(c.Size()) {
				return fmt.Errorf("allreduce count = %d, want %d", got, c.Size())
			}
		}
		return nil
	})
}
