package mpi

import (
	"bytes"
	"testing"
)

// FuzzUnpackSlices: unpackSlices takes untrusted wire bytes (a peer's
// Alltoall payload); it must never panic or over-read, and accepting a
// buffer must mean the canonical re-encoding reproduces the consumed bytes.
func FuzzUnpackSlices(f *testing.F) {
	f.Add(packSlices(nil))
	f.Add(packSlices([][]byte{{}}))
	f.Add(packSlices([][]byte{[]byte("a"), {}, []byte("bcd")}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // count too large
	f.Add([]byte{1, 0, 0, 0, 10, 0, 0, 0, 'x'}) // truncated payload
	f.Fuzz(func(t *testing.T, buf []byte) {
		parts, err := unpackSlices(buf)
		if err != nil {
			return
		}
		repacked := packSlices(parts)
		// unpackSlices ignores trailing garbage after the declared parts, so
		// compare against the consumed prefix only.
		if len(repacked) > len(buf) || !bytes.Equal(repacked, buf[:len(repacked)]) {
			t.Fatalf("repack mismatch: %x -> %x", buf, repacked)
		}
		for _, p := range parts {
			_ = append(p[:len(p):len(p)], 0) // full-capacity slice: no aliasing past the frame
		}
	})
}
