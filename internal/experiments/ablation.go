package experiments

import (
	"fmt"

	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/mrmpi"
	"repro/internal/sample"
	"repro/internal/vtime"
)

// AblationResult collects the design-choice ablations DESIGN.md calls out,
// in one paper-style table.
type AblationResult struct {
	// SampledImbalance / UniformImbalance compare the §III-D sampler with
	// naive uniform splitters on the skewed sequence-length keys.
	SampledImbalance float64
	UniformImbalance float64
	// CollectiveTime / P2PTime compare the MR-MPI collective shuffle with
	// the raw-MPI Isend/Irecv/Wait shuffle on the same aggregate.
	CollectiveTime vtime.Duration
	P2PTime        vtime.Duration
	// IBTime / EthernetTime run the same PaPar hybrid-cut partitioner on
	// the two interconnect models.
	IBTime       vtime.Duration
	EthernetTime vtime.Duration
	// HashImbalance / BalancedImbalance compare the hash low-cut with the
	// Balanced (greedy LPT) extension on skewed group sizes.
	HashImbalance     float64
	BalancedImbalance float64
	// PlainTime / ResilientTime compare plain execution against resilient
	// execution with job-boundary checkpoints at zero faults (the pure
	// fault-tolerance overhead); RecoveryTime is the makespan with one rank
	// crashed mid-run, on the same workload.
	PlainTime     vtime.Duration
	ResilientTime vtime.Duration
	RecoveryTime  vtime.Duration
}

// Ablations runs every ablation at the configured scale.
func Ablations(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	res := &AblationResult{}

	// --- Sampling vs uniform splitters ---
	db := blast.Generate(blast.NR(), opts.BlastScale/4, opts.Seed)
	keys := make([]int64, db.NumSequences())
	var min, max int64 = 1 << 62, 0
	for i, e := range db.Entries {
		keys[i] = int64(e.SeqSize)
		if keys[i] < min {
			min = keys[i]
		}
		if keys[i] > max {
			max = keys[i]
		}
	}
	const buckets = 32
	r := sample.NewReservoir(1024, opts.Seed)
	for _, k := range keys {
		r.Offer(k)
	}
	sp, err := sample.Splitters(r.Sample(), buckets)
	if err != nil {
		return nil, err
	}
	res.SampledImbalance = sample.Imbalance(sample.Histogram(sp, keys))
	res.UniformImbalance = sample.Imbalance(sample.Histogram(sample.UniformSplitters(min, max, buckets), keys))

	// --- Collective vs point-to-point shuffle ---
	shuffleTime := func(tr mrmpi.Transport) (vtime.Duration, error) {
		cl := cluster.New(cluster.DefaultConfig(opts.Nodes / 2))
		_, err := cl.Run(func(rk *cluster.Rank) error {
			mr := mrmpi.New(mpi.NewComm(rk))
			mr.SetTransport(tr)
			if err := mr.Map(func(emit mrmpi.Emitter) error {
				for k := 0; k < 2000; k++ {
					emit([]byte(fmt.Sprintf("key-%d", k)), make([]byte, 32))
				}
				return nil
			}); err != nil {
				return err
			}
			return mr.Aggregate(mrmpi.HashPartitioner)
		})
		return cl.Makespan(), err
	}
	if res.CollectiveTime, err = shuffleTime(mrmpi.Collective); err != nil {
		return nil, err
	}
	if res.P2PTime, err = shuffleTime(mrmpi.PointToPoint); err != nil {
		return nil, err
	}

	// --- Interconnect sensitivity ---
	g := graph.Generate(graph.Pokec(), opts.GraphScale/4, opts.Seed)
	rows := graphRows(g)
	plan, err := compileHybridPlan(opts.Nodes*2, 200)
	if err != nil {
		return nil, err
	}
	netTime := func(net vtime.NetworkModel) (vtime.Duration, error) {
		cfg := cluster.DefaultConfig(opts.Nodes / 2)
		cfg.Network = net
		cl := cluster.New(cfg)
		pr, err := core.Execute(cl, plan, core.Input{LocalRows: spreadRows(rows, cl.Size())})
		if err != nil {
			return 0, err
		}
		return pr.Makespan, nil
	}
	if res.IBTime, err = netTime(vtime.InfiniBandQDR()); err != nil {
		return nil, err
	}
	if res.EthernetTime, err = netTime(vtime.EthernetSocket()); err != nil {
		return nil, err
	}

	// --- Hash vs balanced low-cut placement ---
	balPlan, err := compileHybridPlan(opts.Nodes*2, 1<<30) // everything low-cut
	if err != nil {
		return nil, err
	}
	imbalanceFor := func(policy core.DistrPolicy) (float64, error) {
		p := *balPlan
		jobs := append([]core.Job(nil), balPlan.Jobs...)
		dj := *balPlan.Jobs[2].(*core.DistributeJob)
		dj.Policy = policy
		jobs[2] = &dj
		p.Jobs = jobs
		cl := cluster.New(cluster.DefaultConfig(opts.Nodes / 2))
		pr, err := core.Execute(cl, &p, core.Input{LocalRows: spreadRows(rows, cl.Size())})
		if err != nil {
			return 0, err
		}
		total, max := 0, 0
		for _, part := range pr.Partitions {
			total += len(part)
			if len(part) > max {
				max = len(part)
			}
		}
		if total == 0 {
			return 1, nil
		}
		return float64(max) * float64(len(pr.Partitions)) / float64(total), nil
	}
	if res.HashImbalance, err = imbalanceFor(core.GraphVertexCut); err != nil {
		return nil, err
	}
	if res.BalancedImbalance, err = imbalanceFor(core.Balanced); err != nil {
		return nil, err
	}

	// --- Fault tolerance: checkpoint overhead and recovery cost ---
	ftPlan, err := compileBlastPlan(opts.Nodes)
	if err != nil {
		return nil, err
	}
	ftRows := blastRows(db)
	ftRun := func(fp *faults.Plan) (vtime.Duration, error) {
		cl := cluster.New(cluster.DefaultConfig(opts.Nodes / 2))
		cl.SetFaultPlan(fp)
		pr, _, err := core.ExecuteResilient(cl, ftPlan, core.Input{LocalRows: spreadRows(ftRows, cl.Size())}, nil)
		if err != nil {
			return 0, err
		}
		return pr.Makespan, nil
	}
	{
		cl := cluster.New(cluster.DefaultConfig(opts.Nodes / 2))
		pr, err := core.Execute(cl, ftPlan, core.Input{LocalRows: spreadRows(ftRows, cl.Size())})
		if err != nil {
			return nil, err
		}
		res.PlainTime = pr.Makespan
	}
	if res.ResilientTime, err = ftRun(nil); err != nil {
		return nil, err
	}
	crash := &faults.Plan{Seed: opts.Seed, Crashes: []faults.Crash{
		{Rank: 1, At: vtime.Duration(float64(res.PlainTime) * 0.4)},
	}}
	if res.RecoveryTime, err = ftRun(crash); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the ablations.
func (r *AblationResult) Render() string {
	rows := [][]string{
		{"reducer splitters", "sampled (§III-D)", fmt.Sprintf("imbalance %.2f", r.SampledImbalance),
			"uniform", fmt.Sprintf("imbalance %.2f", r.UniformImbalance)},
		{"shuffle transport", "collective (MR-MPI)", r.CollectiveTime.String(),
			"Isend/Irecv (raw MPI)", r.P2PTime.String()},
		{"interconnect", "InfiniBand RDMA", r.IBTime.String(),
			"Ethernet sockets", r.EthernetTime.String()},
		{"low-cut placement", "hash (PowerLyra)", fmt.Sprintf("imbalance %.2f", r.HashImbalance),
			"balanced LPT (extension)", fmt.Sprintf("imbalance %.2f", r.BalancedImbalance)},
		{"fault tolerance", "plain (no checkpoints)", r.PlainTime.String(),
			"resilient (0 faults / 1 crash)", fmt.Sprintf("%s / %s", r.ResilientTime, r.RecoveryTime)},
	}
	return "Ablations: design choices isolated on the same workloads\n" +
		table([]string{"dimension", "variant A", "result A", "variant B", "result B"}, rows)
}
