package experiments

import (
	"fmt"

	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vtime"
)

// Fig12Row is one bar pair of Figure 12: the normalized muBLASTP search
// time of the block policy relative to cyclic (cyclic == 1.0) for one
// (database, nodes, batch) combination.
type Fig12Row struct {
	Database string
	Nodes    int
	Batch    string
	// BlockOverCyclic is the block policy's search makespan normalized to
	// cyclic. > 1 means cyclic wins, the paper's headline.
	BlockOverCyclic float64
	CyclicTime      vtime.Duration
	BlockTime       vtime.Duration
}

// Fig12Result reproduces Figure 12 (a)-(d).
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 runs the search-skew experiment: partition each database with both
// policies via the reference partitioners (identical to PaPar's output, as
// the correctness experiment verifies) and evaluate the modeled search
// makespan for the three query batches on 8 and 16 nodes.
func Fig12(opts Options) (*Fig12Result, error) {
	opts = opts.withDefaults()
	res := &Fig12Result{}
	for _, prof := range []blast.Profile{blast.EnvNR(), blast.NR()} {
		db := blast.Generate(prof, opts.BlastScale, opts.Seed)
		batches := []blast.QueryBatch{
			blast.MakeBatch("100", db, 100, 100, opts.Seed+1),
			blast.MakeBatch("500", db, 100, 500, opts.Seed+2),
			blast.MakeBatch("mixed", db, 100, 0, opts.Seed+3),
		}
		for _, nodes := range []int{opts.Nodes / 2, opts.Nodes} {
			np := nodes * 2 // one partition per socket (§IV-B)
			cyclic := blast.CyclicPartition(db.Entries, np)
			block := blast.BlockPartition(db.Entries, np)
			// One MPI process per partition, searched on the simulated
			// cluster (the deployment §IV-B describes).
			cfg := cluster.DefaultConfig(np)
			cfg.RanksPerNode = 1
			cl := cluster.New(cfg)
			for _, b := range batches {
				cr, err := blast.DistributedSearch(cl, cyclic, b)
				if err != nil {
					return nil, err
				}
				br, err := blast.DistributedSearch(cl, block, b)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Fig12Row{
					Database: prof.Name, Nodes: nodes, Batch: b.Name,
					BlockOverCyclic: float64(br.Makespan) / float64(cr.Makespan),
					CyclicTime:      cr.Makespan, BlockTime: br.Makespan,
				})
			}
		}
	}
	return res, nil
}

// Render prints the figure as a table.
func (r *Fig12Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Database, fmt.Sprint(row.Nodes), row.Batch,
			"1.00", fmt.Sprintf("%.2f", row.BlockOverCyclic),
		})
	}
	return "Figure 12: normalized muBLASTP search time (cyclic = 1.00)\n" +
		table([]string{"database", "nodes", "batch", "cyclic", "block"}, rows)
}

// Fig13Row is one database's Figure 13(a) comparison.
type Fig13Row struct {
	Database string
	// BaselineTime is the muBLASTP multithreaded partitioner on one node
	// (16 threads: two 8-core sockets).
	BaselineTime vtime.Duration
	// PaParTime16 is the PaPar-generated partitioner on the full cluster.
	PaParTime16 vtime.Duration
	// PaParTime1 is PaPar on a single node (the ASPaS comparison).
	PaParTime1 vtime.Duration
	// Speedup is BaselineTime / PaParTime16 — the paper reports 8.6x
	// (env_nr) and 20.2x (nr).
	Speedup float64
	// Sequences actually partitioned at this scale.
	Sequences int
}

// Fig13aResult reproduces Figure 13(a).
type Fig13aResult struct {
	Rows []Fig13Row
}

// Fig13a compares cyclic partitioning time: the PaPar-generated partitioner
// on the full cluster versus muBLASTP's own single-node multithreaded
// implementation.
func Fig13a(opts Options) (*Fig13aResult, error) {
	opts = opts.withDefaults()
	res := &Fig13aResult{}
	for _, prof := range []blast.Profile{blast.EnvNR(), blast.NR()} {
		db := blast.Generate(prof, opts.BlastScale, opts.Seed)
		rows := blastRows(db)
		np := opts.Nodes * 2

		plan, err := compileBlastPlan(np)
		if err != nil {
			return nil, err
		}
		run := func(nodes int) (vtime.Duration, error) {
			cl := cluster.New(cluster.DefaultConfig(nodes))
			r, err := core.Execute(cl, plan, core.Input{LocalRows: spreadRows(rows, cl.Size())})
			if err != nil {
				return 0, err
			}
			return r.Makespan, nil
		}
		t16, err := run(opts.Nodes)
		if err != nil {
			return nil, err
		}
		t1, err := run(1)
		if err != nil {
			return nil, err
		}
		base := blast.RefPartitionTime(db.NumSequences(), 16, vtime.SandyBridge())
		res.Rows = append(res.Rows, Fig13Row{
			Database:     prof.Name,
			BaselineTime: base,
			PaParTime16:  t16,
			PaParTime1:   t1,
			Speedup:      float64(base) / float64(t16),
			Sequences:    db.NumSequences(),
		})
	}
	return res, nil
}

// Render prints the figure as a table.
func (r *Fig13aResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Database, fmt.Sprint(row.Sequences),
			row.BaselineTime.String(), row.PaParTime1.String(), row.PaParTime16.String(),
			fmt.Sprintf("%.1fx", row.Speedup),
		})
	}
	return "Figure 13(a): cyclic partitioning time, muBLASTP baseline vs PaPar\n" +
		table([]string{"database", "sequences", "muBLASTP(1 node)", "PaPar(1 node)", "PaPar(16 nodes)", "speedup"}, rows)
}

// Fig13bResult reproduces Figure 13(b): PaPar strong scaling.
type Fig13bResult struct {
	// Databases in row order; Times[db][i] is the makespan at Nodes[i].
	Databases []string
	Nodes     []int
	Times     map[string][]vtime.Duration
	// Speedups relative to the database's own single-node run.
	Speedups map[string][]float64
}

// Fig13b measures PaPar partitioning makespan at 1..Nodes nodes.
func Fig13b(opts Options) (*Fig13bResult, error) {
	opts = opts.withDefaults()
	res := &Fig13bResult{
		Times:    map[string][]vtime.Duration{},
		Speedups: map[string][]float64{},
	}
	for n := 1; n <= opts.Nodes; n *= 2 {
		res.Nodes = append(res.Nodes, n)
	}
	for _, prof := range []blast.Profile{blast.EnvNR(), blast.NR()} {
		db := blast.Generate(prof, opts.BlastScale, opts.Seed)
		rows := blastRows(db)
		plan, err := compileBlastPlan(opts.Nodes * 2)
		if err != nil {
			return nil, err
		}
		res.Databases = append(res.Databases, prof.Name)
		for _, n := range res.Nodes {
			cl := cluster.New(cluster.DefaultConfig(n))
			r, err := core.Execute(cl, plan, core.Input{LocalRows: spreadRows(rows, cl.Size())})
			if err != nil {
				return nil, err
			}
			res.Times[prof.Name] = append(res.Times[prof.Name], r.Makespan)
		}
		base := float64(res.Times[prof.Name][0])
		for _, t := range res.Times[prof.Name] {
			res.Speedups[prof.Name] = append(res.Speedups[prof.Name], base/float64(t))
		}
	}
	return res, nil
}

// Render prints the scaling curves as a table.
func (r *Fig13bResult) Render() string {
	header := []string{"database"}
	for _, n := range r.Nodes {
		header = append(header, fmt.Sprintf("%d node(s)", n))
	}
	rows := make([][]string, 0, len(r.Databases))
	for _, db := range r.Databases {
		row := []string{db}
		for i := range r.Nodes {
			row = append(row, fmt.Sprintf("%v (%.1fx)", r.Times[db][i], r.Speedups[db][i]))
		}
		rows = append(rows, row)
	}
	return "Figure 13(b): PaPar strong scaling (speedup vs 1 node)\n" + table(header, rows)
}
