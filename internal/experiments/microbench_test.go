package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func suite(results ...MicrobenchResult) *Microbench { return &Microbench{Results: results} }

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := suite(MicrobenchResult{Name: "A", NsPerOp: 1000, AllocsPerOp: 100})
	cur := suite(MicrobenchResult{Name: "A", NsPerOp: 1200, AllocsPerOp: 110})
	if regs := cur.Compare(base, 0.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareFlagsSlowdown(t *testing.T) {
	base := suite(MicrobenchResult{Name: "A", NsPerOp: 1000, AllocsPerOp: 100})
	cur := suite(MicrobenchResult{Name: "A", NsPerOp: 1300, AllocsPerOp: 100})
	regs := cur.Compare(base, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("want one ns/op regression, got %v", regs)
	}
}

func TestCompareFlagsAllocGrowth(t *testing.T) {
	base := suite(MicrobenchResult{Name: "A", NsPerOp: 1000, AllocsPerOp: 100})
	cur := suite(MicrobenchResult{Name: "A", NsPerOp: 1000, AllocsPerOp: 200})
	regs := cur.Compare(base, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
}

func TestCompareFlagsMissingBenchmarks(t *testing.T) {
	base := suite(
		MicrobenchResult{Name: "A", NsPerOp: 1000},
		MicrobenchResult{Name: "B", NsPerOp: 1000},
	)
	cur := suite(
		MicrobenchResult{Name: "A", NsPerOp: 1000},
		MicrobenchResult{Name: "C", NsPerOp: 1000},
	)
	regs := cur.Compare(base, 0.25)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (B dropped, C unknown), got %v", regs)
	}
}

func TestLoadMicrobenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	out := suite(MicrobenchResult{Name: "A", NsPerOp: 42, AllocsPerOp: 7})
	if err := out.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	in, err := LoadMicrobench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Results) != 1 || in.Results[0] != out.Results[0] {
		t.Fatalf("round trip mismatch: %+v", in.Results)
	}
}
