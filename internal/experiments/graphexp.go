package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pagerank"
	"repro/internal/powerlyra"
	"repro/internal/vtime"
)

// Table2Result reproduces Table II: statistics of the graph datasets.
type Table2Result struct {
	Scale float64
	Stats []graph.Stats
}

// Table2 generates the three synthetic twins and computes their statistics.
func Table2(opts Options) (*Table2Result, error) {
	opts = opts.withDefaults()
	res := &Table2Result{Scale: opts.GraphScale}
	for _, p := range graph.Profiles() {
		g := graph.Generate(p, opts.GraphScale, opts.Seed)
		res.Stats = append(res.Stats, graph.ComputeStats(g))
	}
	return res, nil
}

// Render prints the table in the paper's column order.
func (r *Table2Result) Render() string {
	rows := make([][]string, 0, len(r.Stats))
	for _, s := range r.Stats {
		rows = append(rows, []string{
			s.Name, fmt.Sprint(s.Vertices), fmt.Sprint(s.Edges), s.Type, fmt.Sprint(s.Triangles),
		})
	}
	return fmt.Sprintf("Table II: graph dataset statistics (scale %g of the SNAP originals)\n", r.Scale) +
		table([]string{"Graph", "Vertices", "Edges", "Type", "Triangles"}, rows)
}

// Fig14Row is one bar group of Figure 14: PageRank time per method on one
// graph, normalized to hybrid-cut.
type Fig14Row struct {
	Graph string
	Nodes int
	// Normalized[method] is time / hybrid time.
	Hybrid, Vertex, Edge float64
	HybridTime           vtime.Duration
}

// Fig14Result reproduces Figure 14 (a) and (b).
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14 partitions each graph with the three methods and runs distributed
// PageRank on 8 and 16 nodes.
func Fig14(opts Options) (*Fig14Result, error) {
	opts = opts.withDefaults()
	const iters = 5
	res := &Fig14Result{}
	for _, prof := range graph.Profiles() {
		g := graph.Generate(prof, opts.GraphScale, opts.Seed)
		for _, nodes := range []int{opts.Nodes / 2, opts.Nodes} {
			np := nodes * 2
			times := map[powerlyra.Method]vtime.Duration{}
			for _, m := range []powerlyra.Method{powerlyra.HybridCut, powerlyra.VertexCut, powerlyra.EdgeCut} {
				a, err := powerlyra.Partition(g, m, np, powerlyra.DefaultThreshold)
				if err != nil {
					return nil, err
				}
				cl := cluster.New(cluster.DefaultConfig(nodes))
				pr, err := pagerank.Distributed(cl, a, iters)
				if err != nil {
					return nil, err
				}
				times[m] = pr.Makespan
			}
			h := float64(times[powerlyra.HybridCut])
			res.Rows = append(res.Rows, Fig14Row{
				Graph: prof.Name, Nodes: nodes,
				Hybrid:     1.0,
				Vertex:     float64(times[powerlyra.VertexCut]) / h,
				Edge:       float64(times[powerlyra.EdgeCut]) / h,
				HybridTime: times[powerlyra.HybridCut],
			})
		}
	}
	return res, nil
}

// Render prints the figure as a table.
func (r *Fig14Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Graph, fmt.Sprint(row.Nodes),
			"1.00", fmt.Sprintf("%.2f", row.Vertex), fmt.Sprintf("%.2f", row.Edge),
		})
	}
	return "Figure 14: normalized PageRank time (hybrid-cut = 1.00)\n" +
		table([]string{"graph", "nodes", "hybrid-cut", "vertex-cut", "edge-cut"}, rows)
}

// Fig15Row is one graph's Figure 15(a) comparison.
type Fig15Row struct {
	Graph string
	// PaParTime is the generated hybrid-cut partitioner on the full
	// cluster (MR-MPI over InfiniBand).
	PaParTime vtime.Duration
	// PowerLyraTime is the native partitioner (sockets over Ethernet,
	// NUMA-tuned, dynamic scoring).
	PowerLyraTime vtime.Duration
	// PaParSpeedup is PowerLyraTime / PaParTime (>1 means PaPar wins; the
	// paper reports ~1.2x on LiveJournal, <1 on Google and Pokec).
	PaParSpeedup float64
	Edges        int
}

// Fig15aResult reproduces Figure 15(a).
type Fig15aResult struct {
	Rows []Fig15Row
}

// Fig15a compares hybrid-cut partitioning time on the full cluster.
func Fig15a(opts Options) (*Fig15aResult, error) {
	opts = opts.withDefaults()
	res := &Fig15aResult{}
	np := opts.Nodes * 2
	plan, err := compileHybridPlan(np, powerlyra.DefaultThreshold)
	if err != nil {
		return nil, err
	}
	for _, prof := range graph.Profiles() {
		g := graph.Generate(prof, opts.GraphScale, opts.Seed)
		rows := graphRows(g)

		cl := cluster.New(cluster.DefaultConfig(opts.Nodes))
		pr, err := core.Execute(cl, plan, core.Input{LocalRows: spreadRows(rows, cl.Size())})
		if err != nil {
			return nil, err
		}
		ncl := cluster.New(powerlyra.NativeClusterConfig(opts.Nodes))
		nr, err := powerlyra.NativePartition(ncl, g, np, powerlyra.DefaultThreshold)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig15Row{
			Graph:         prof.Name,
			PaParTime:     pr.Makespan,
			PowerLyraTime: nr.Makespan,
			PaParSpeedup:  float64(nr.Makespan) / float64(pr.Makespan),
			Edges:         g.NumEdges(),
		})
	}
	return res, nil
}

// Render prints the figure as a table.
func (r *Fig15aResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Graph, fmt.Sprint(row.Edges),
			row.PowerLyraTime.String(), row.PaParTime.String(),
			fmt.Sprintf("%.2fx", row.PaParSpeedup),
		})
	}
	return "Figure 15(a): hybrid-cut partitioning time on 16 nodes (PaPar speedup over PowerLyra)\n" +
		table([]string{"graph", "edges", "PowerLyra", "PaPar", "PaPar speedup"}, rows)
}

// Fig15bResult reproduces Figure 15(b): strong scaling of both
// partitioners.
type Fig15bResult struct {
	Graphs []string
	Nodes  []int
	// PaPar[g][i] and PowerLyra[g][i] are speedups vs the system's own
	// 1-node time on graph g at Nodes[i].
	PaPar     map[string][]float64
	PowerLyra map[string][]float64
}

// Fig15b measures both systems at 1..Nodes nodes.
func Fig15b(opts Options) (*Fig15bResult, error) {
	opts = opts.withDefaults()
	res := &Fig15bResult{PaPar: map[string][]float64{}, PowerLyra: map[string][]float64{}}
	for n := 1; n <= opts.Nodes; n *= 2 {
		res.Nodes = append(res.Nodes, n)
	}
	np := opts.Nodes * 2
	plan, err := compileHybridPlan(np, powerlyra.DefaultThreshold)
	if err != nil {
		return nil, err
	}
	for _, prof := range graph.Profiles() {
		g := graph.Generate(prof, opts.GraphScale, opts.Seed)
		rows := graphRows(g)
		res.Graphs = append(res.Graphs, prof.Name)
		var pTimes, nTimes []float64
		for _, n := range res.Nodes {
			cl := cluster.New(cluster.DefaultConfig(n))
			pr, err := core.Execute(cl, plan, core.Input{LocalRows: spreadRows(rows, cl.Size())})
			if err != nil {
				return nil, err
			}
			pTimes = append(pTimes, float64(pr.Makespan))

			ncl := cluster.New(powerlyra.NativeClusterConfig(n))
			nr, err := powerlyra.NativePartition(ncl, g, np, powerlyra.DefaultThreshold)
			if err != nil {
				return nil, err
			}
			nTimes = append(nTimes, float64(nr.Makespan))
		}
		for i := range res.Nodes {
			res.PaPar[prof.Name] = append(res.PaPar[prof.Name], pTimes[0]/pTimes[i])
			res.PowerLyra[prof.Name] = append(res.PowerLyra[prof.Name], nTimes[0]/nTimes[i])
		}
	}
	return res, nil
}

// Render prints both scaling families.
func (r *Fig15bResult) Render() string {
	header := []string{"system/graph"}
	for _, n := range r.Nodes {
		header = append(header, fmt.Sprintf("%dn", n))
	}
	var rows [][]string
	for _, g := range r.Graphs {
		row := []string{"PaPar/" + g}
		for _, s := range r.PaPar[g] {
			row = append(row, fmt.Sprintf("%.2fx", s))
		}
		rows = append(rows, row)
	}
	for _, g := range r.Graphs {
		row := []string{"PowerLyra/" + g}
		for _, s := range r.PowerLyra[g] {
			row = append(row, fmt.Sprintf("%.2fx", s))
		}
		rows = append(rows, row)
	}
	return "Figure 15(b): strong scaling of hybrid-cut partitioning (speedup vs own 1-node time)\n" +
		table(header, rows)
}
