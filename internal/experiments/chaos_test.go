package experiments

import (
	"strings"
	"testing"
)

func TestChaosShape(t *testing.T) {
	r, err := Chaos(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 4 {
		t.Fatalf("want 4 scenarios (2 workflows x {crash, drops}), got %d", len(r.Scenarios))
	}
	for _, sc := range r.Scenarios {
		if !sc.Identical {
			t.Errorf("%s under %q: recovered partitions differ from the fault-free reference", sc.Workflow, sc.Plan)
		}
		if !sc.Deterministic {
			t.Errorf("%s under %q: replay with the same seed diverged", sc.Workflow, sc.Plan)
		}
		if sc.Makespan <= 0 || sc.Reference <= 0 {
			t.Errorf("%s: missing makespans: %+v", sc.Workflow, sc)
		}
		if sc.CheckpointBytes == 0 {
			t.Errorf("%s: no checkpoints written", sc.Workflow)
		}
	}
	// The crash scenarios (even indices) must report the dead rank and at
	// least one recovery round, and recovery costs virtual time.
	for _, i := range []int{0, 2} {
		sc := r.Scenarios[i]
		if len(sc.Failed) != 1 || sc.Rounds < 1 {
			t.Errorf("%s: crash not recovered: failed=%v rounds=%d", sc.Workflow, sc.Failed, sc.Rounds)
		}
		if sc.Makespan <= sc.Reference {
			t.Errorf("%s: recovery makespan %v not above reference %v", sc.Workflow, sc.Makespan, sc.Reference)
		}
		if sc.CrashAt <= 0 || sc.CrashAt >= sc.Makespan {
			t.Errorf("%s: crash time %v outside run (makespan %v)", sc.Workflow, sc.CrashAt, sc.Makespan)
		}
	}
	// The drop scenarios (odd indices) are absorbed by the transport.
	for _, i := range []int{1, 3} {
		sc := r.Scenarios[i]
		if len(sc.Failed) != 0 || sc.Rounds != 0 {
			t.Errorf("%s: drops must not kill ranks: failed=%v rounds=%d", sc.Workflow, sc.Failed, sc.Rounds)
		}
	}
	if r.CheckpointOverheadPct <= 0 {
		t.Errorf("zero-fault checkpoint overhead missing: %.2f%%", r.CheckpointOverheadPct)
	}
	out := r.Render()
	if !strings.Contains(out, "Fault injection") || !strings.Contains(out, "identical") {
		t.Errorf("Render incomplete:\n%s", out)
	}
}
