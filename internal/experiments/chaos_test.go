package experiments

import (
	"strings"
	"testing"
)

// Per workflow the sweep runs {crash, drops, corrupt, gauntlet, enospc,
// diskrot} in that order; these offsets name the scenario within each
// workflow's block of 6.
const (
	scCrash = iota
	scDrops
	scCorrupt
	scGauntlet
	scENOSPC
	scDiskRot
	scPerWorkflow
)

func TestChaosShape(t *testing.T) {
	r, err := Chaos(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 2*scPerWorkflow {
		t.Fatalf("want 12 scenarios (2 workflows x {crash, drops, corrupt, gauntlet, enospc, diskrot}), got %d", len(r.Scenarios))
	}
	for _, sc := range r.Scenarios {
		if !sc.Identical {
			t.Errorf("%s under %q: recovered partitions differ from the fault-free reference", sc.Workflow, sc.Plan)
		}
		if !sc.Deterministic {
			t.Errorf("%s under %q: replay with the same seed diverged", sc.Workflow, sc.Plan)
		}
		if sc.Makespan <= 0 || sc.Reference <= 0 {
			t.Errorf("%s: missing makespans: %+v", sc.Workflow, sc)
		}
		if sc.CheckpointBytes == 0 {
			t.Errorf("%s: no checkpoints written", sc.Workflow)
		}
		if sc.CorruptInjected != sc.CorruptDetected {
			t.Errorf("%s under %q: silent corruption: injected %d, detected %d",
				sc.Workflow, sc.Plan, sc.CorruptInjected, sc.CorruptDetected)
		}
	}
	if r.Failed() {
		t.Error("Failed() true although every scenario passed its own checks")
	}
	// The crash scenarios must report the dead rank and at least one
	// recovery round, and recovery costs virtual time.
	for _, i := range []int{scCrash, scPerWorkflow + scCrash} {
		sc := r.Scenarios[i]
		if len(sc.Failed) != 1 || sc.Rounds < 1 {
			t.Errorf("%s: crash not recovered: failed=%v rounds=%d", sc.Workflow, sc.Failed, sc.Rounds)
		}
		if sc.Makespan <= sc.Reference {
			t.Errorf("%s: recovery makespan %v not above reference %v", sc.Workflow, sc.Makespan, sc.Reference)
		}
		if sc.CrashAt <= 0 || sc.CrashAt >= sc.Makespan {
			t.Errorf("%s: crash time %v outside run (makespan %v)", sc.Workflow, sc.CrashAt, sc.Makespan)
		}
	}
	// The drop scenarios are absorbed by the transport.
	for _, i := range []int{scDrops, scPerWorkflow + scDrops} {
		sc := r.Scenarios[i]
		if len(sc.Failed) != 0 || sc.Rounds != 0 {
			t.Errorf("%s: drops must not kill ranks: failed=%v rounds=%d", sc.Workflow, sc.Failed, sc.Rounds)
		}
	}
	// The corruption scenarios: damage injected, every instance detected,
	// each detection forcing a retransmission; no rank dies.
	for _, i := range []int{scCorrupt, scPerWorkflow + scCorrupt} {
		sc := r.Scenarios[i]
		if sc.CorruptInjected == 0 {
			t.Errorf("%s under %q: corrupting link injected nothing", sc.Workflow, sc.Plan)
		}
		if sc.Retransmits < sc.CorruptDetected {
			t.Errorf("%s: retransmits %d < detections %d", sc.Workflow, sc.Retransmits, sc.CorruptDetected)
		}
		if len(sc.Failed) != 0 {
			t.Errorf("%s: corruption must not kill ranks: failed=%v", sc.Workflow, sc.Failed)
		}
	}
	// The gauntlet scenarios: the crashed rank's checkpoint host is lost, so
	// recovery must have failed over to buddy replicas.
	for _, i := range []int{scGauntlet, scPerWorkflow + scGauntlet} {
		sc := r.Scenarios[i]
		if len(sc.Failed) != 1 || sc.Rounds < 1 {
			t.Errorf("%s: gauntlet crash not recovered: failed=%v rounds=%d", sc.Workflow, sc.Failed, sc.Rounds)
		}
		if sc.CkptFailovers == 0 {
			t.Errorf("%s under %q: no checkpoint failovers despite losing the crashed rank's host", sc.Workflow, sc.Plan)
		}
	}
	// The disk-fault scenarios: both must actually spill; the ENOSPC+torn
	// scenario must have exercised retries or failovers, the rot scenario
	// must have detected every rotted frame (a rot that went unnoticed would
	// show up as a MISMATCH above); no rank dies on a disk fault.
	for _, i := range []int{scENOSPC, scPerWorkflow + scENOSPC, scDiskRot, scPerWorkflow + scDiskRot} {
		sc := r.Scenarios[i]
		if sc.SpillPages == 0 {
			t.Errorf("%s under %q: disk-fault scenario never spilled", sc.Workflow, sc.Plan)
		}
		if len(sc.Failed) != 0 {
			t.Errorf("%s: disk faults must not kill ranks: failed=%v", sc.Workflow, sc.Failed)
		}
	}
	for _, i := range []int{scENOSPC, scPerWorkflow + scENOSPC} {
		sc := r.Scenarios[i]
		if sc.SpillRetries == 0 && sc.SpillFailovers == 0 {
			t.Errorf("%s under %q: ENOSPC+torn plan triggered no retries or failovers", sc.Workflow, sc.Plan)
		}
	}
	for _, i := range []int{scDiskRot, scPerWorkflow + scDiskRot} {
		sc := r.Scenarios[i]
		if sc.SpillRotDetected == 0 {
			t.Errorf("%s under %q: rot plan rotted nothing the CRC caught", sc.Workflow, sc.Plan)
		}
	}
	if r.CheckpointOverheadPct <= 0 {
		t.Errorf("zero-fault checkpoint overhead missing: %.2f%%", r.CheckpointOverheadPct)
	}
	out := r.Render()
	if !strings.Contains(out, "Fault injection") || !strings.Contains(out, "identical") ||
		!strings.Contains(out, "inj=") {
		t.Errorf("Render incomplete:\n%s", out)
	}
}
