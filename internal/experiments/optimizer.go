package experiments

import (
	"fmt"

	"repro"
	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/planopt"
	"repro/internal/vtime"
)

// OptimizerCase is one workflow executed literally and optimized on the same
// input.
type OptimizerCase struct {
	Workflow   string   `json:"workflow"`
	JobsBefore int      `json:"jobs_before"`
	JobsAfter  int      `json:"jobs_after"`
	Rules      []string `json:"rules"`

	LiteralMakespan   vtime.Duration `json:"literal_makespan"`
	OptimizedMakespan vtime.Duration `json:"optimized_makespan"`
	LiteralShuffle    int64          `json:"literal_shuffle_bytes"`
	OptimizedShuffle  int64          `json:"optimized_shuffle_bytes"`

	// Identical is the hard invariant: optimized partitions byte-identical
	// to the literal run's.
	Identical bool `json:"identical"`
	// WantReduction marks the workflows where the ISSUE demands a measured
	// makespan win (fusion fires), not just parity.
	WantReduction bool `json:"want_reduction"`
}

// Reduction is the makespan saving in percent (positive = optimizer won).
func (c OptimizerCase) Reduction() float64 {
	if c.LiteralMakespan == 0 {
		return 0
	}
	return 100 * (1 - float64(c.OptimizedMakespan)/float64(c.LiteralMakespan))
}

// OptimizerResult is the cost-based plan optimizer experiment: identity and
// makespan across every shipped workflow, automatic policy selection on the
// two auto configs, and a fault-injected run over a fused plan.
type OptimizerResult struct {
	Nodes int             `json:"nodes"`
	Cases []OptimizerCase `json:"cases"`

	// Auto-selection verdicts (the ROADMAP gate): the optimizer must pick
	// cyclic for the muBLASTP skew profile and graphVertexCut for the
	// PowerLyra graph profile, with a sane bound threshold.
	BlastAutoPolicy string `json:"blast_auto_policy"`
	GraphAutoPolicy string `json:"graph_auto_policy"`
	AutoThreshold   int64  `json:"auto_threshold"`

	// Predicted vs measured makespan for the optimized muBLASTP plan — the
	// cost model's calibration check.
	PredictedMakespan vtime.Duration `json:"predicted_makespan"`
	MeasuredMakespan  vtime.Duration `json:"measured_makespan"`

	// The gauntlet: a rank crash mid-run through the fused muBLASTP plan.
	// Recovery must reproduce the literal partitions and replay
	// deterministically.
	GauntletPlan          string         `json:"gauntlet_plan"`
	GauntletMakespan      vtime.Duration `json:"gauntlet_makespan"`
	GauntletFailed        []int          `json:"gauntlet_failed"`
	GauntletRounds        int            `json:"gauntlet_rounds"`
	GauntletIdentical     bool           `json:"gauntlet_identical"`
	GauntletDeterministic bool           `json:"gauntlet_deterministic"`
}

// Failed reports whether any headline claim did not hold.
func (r *OptimizerResult) Failed() bool {
	for _, c := range r.Cases {
		if !c.Identical {
			return true
		}
		if c.OptimizedMakespan > c.LiteralMakespan {
			return true
		}
		if c.WantReduction && c.OptimizedMakespan >= c.LiteralMakespan {
			return true
		}
	}
	return r.BlastAutoPolicy != core.Cyclic.String() ||
		r.GraphAutoPolicy != core.GraphVertexCut.String() ||
		!r.GauntletIdentical || !r.GauntletDeterministic
}

// firstDistribute finds the plan's Distribute job, descending into fusions.
func firstDistribute(jobs []core.Job) *core.DistributeJob {
	for _, j := range jobs {
		switch t := j.(type) {
		case *core.DistributeJob:
			return t
		case *core.FusedJob:
			if d := firstDistribute(t.Inner); d != nil {
				return d
			}
		}
	}
	return nil
}

// firstThreshold finds the bound split threshold, descending into fusions.
func firstThreshold(jobs []core.Job) int64 {
	for _, j := range jobs {
		switch t := j.(type) {
		case *core.SplitJob:
			for _, b := range t.Branches {
				if !b.Condition.Auto {
					return b.Condition.Threshold
				}
			}
		case *core.FusedJob:
			if thr := firstThreshold(t.Inner); thr != 0 {
				return thr
			}
		}
	}
	return 0
}

// compileNamedPlan compiles a shipped workflow config with args.
func compileNamedPlan(file string, args map[string]string) (*core.Plan, error) {
	f, err := framework()
	if err != nil {
		return nil, err
	}
	return f.CompileWorkflowConfig(repro.Config(file), args)
}

// RunOptimizer runs the plan-optimizer experiment.
func RunOptimizer(opts Options) (*OptimizerResult, error) {
	opts = opts.withDefaults()
	nodes := opts.Nodes / 2
	if nodes < 2 {
		nodes = 2
	}
	np := opts.Nodes
	out := &OptimizerResult{Nodes: nodes}

	blastData := blastRows(blast.Generate(blast.EnvNR(), opts.BlastScale/2, opts.Seed))
	graphData := graphRows(graph.Generate(graph.Google(), opts.GraphScale/2, opts.Seed))

	execute := func(plan *core.Plan, rows []core.Row) (*core.Result, error) {
		cl := cluster.New(cluster.DefaultConfig(nodes))
		return core.Execute(cl, plan, core.Input{LocalRows: spreadRows(rows, cl.Size())})
	}

	// literalFor maps each workflow to the concrete plan the optimized run
	// must be byte-identical to. For the two auto configs that reference is
	// the shipped concrete config with the policy/threshold the optimizer
	// bound — auto must be a pure shorthand, never a different computation.
	type wfCase struct {
		file          string
		args          map[string]string
		rows          []core.Row
		stats         bool
		wantReduction bool
		literalFor    func(after *core.Plan) (*core.Plan, error)
	}
	blastArgs := map[string]string{
		"input_path": "mem://blast", "output_path": "mem://out",
		"num_partitions": fmt.Sprint(np), "num_reducers": fmt.Sprint(np),
	}
	hybridArgs := func(threshold string) map[string]string {
		m := map[string]string{
			"input_file": "mem://graph", "output_path": "mem://out",
			"num_partitions": fmt.Sprint(np),
		}
		if threshold != "" {
			m["threshold"] = threshold
		}
		return m
	}
	cases := []wfCase{
		{file: "blast_partition.xml", args: blastArgs, rows: blastData, wantReduction: true},
		{file: "blast_partition_block.xml", args: map[string]string{
			"input_path": "mem://blast", "output_path": "mem://out",
			"num_partitions": fmt.Sprint(np)}, rows: blastData},
		{file: "hybrid_cut.xml", args: hybridArgs("200"), rows: graphData, wantReduction: true},
		{file: "blast_partition_auto.xml", args: blastArgs, rows: blastData, stats: true,
			literalFor: func(after *core.Plan) (*core.Plan, error) {
				return compileNamedPlan("blast_partition.xml", blastArgs)
			}},
		{file: "hybrid_cut_auto.xml", args: hybridArgs(""), rows: graphData, stats: true,
			literalFor: func(after *core.Plan) (*core.Plan, error) {
				thr := firstThreshold(after.Jobs)
				return compileNamedPlan("hybrid_cut.xml", hybridArgs(fmt.Sprint(thr)))
			}},
	}

	var fusedBlast *core.Plan
	var literalBlastParts [][]core.Row
	for _, wc := range cases {
		plan, err := compileNamedPlan(wc.file, wc.args)
		if err != nil {
			return nil, fmt.Errorf("compile %s: %w", wc.file, err)
		}
		pOpts := planopt.Options{Ranks: nodes * 2}
		if wc.stats {
			if pOpts.Stats, err = planopt.CollectStats(plan, spreadRows(wc.rows, nodes*2), opts.Seed); err != nil {
				return nil, fmt.Errorf("stats %s: %w", wc.file, err)
			}
		}
		rw, err := planopt.Optimize(plan, pOpts)
		if err != nil {
			return nil, fmt.Errorf("optimize %s: %w", wc.file, err)
		}

		literal := plan
		if wc.literalFor != nil {
			if literal, err = wc.literalFor(rw.After); err != nil {
				return nil, fmt.Errorf("literal reference for %s: %w", wc.file, err)
			}
		}
		lit, err := execute(literal, wc.rows)
		if err != nil {
			return nil, fmt.Errorf("literal %s: %w", wc.file, err)
		}
		opt, err := execute(rw.After, wc.rows)
		if err != nil {
			return nil, fmt.Errorf("optimized %s: %w", wc.file, err)
		}

		c := OptimizerCase{
			Workflow:          plan.WorkflowID,
			JobsBefore:        len(rw.Before.Jobs),
			JobsAfter:         len(rw.After.Jobs),
			LiteralMakespan:   lit.Makespan,
			OptimizedMakespan: opt.Makespan,
			LiteralShuffle:    lit.ShuffleBytes,
			OptimizedShuffle:  opt.ShuffleBytes,
			Identical:         fingerprint(lit.Partitions, false) == fingerprint(opt.Partitions, false),
			WantReduction:     wc.wantReduction,
		}
		for _, a := range rw.Fired {
			c.Rules = append(c.Rules, a.Rule)
		}
		out.Cases = append(out.Cases, c)

		switch wc.file {
		case "blast_partition.xml":
			fusedBlast = rw.After
			literalBlastParts = lit.Partitions
		case "blast_partition_auto.xml":
			if d := firstDistribute(rw.After.Jobs); d != nil {
				out.BlastAutoPolicy = d.Policy.String()
			}
			out.PredictedMakespan = vtime.Duration(rw.Predicted.AfterNS)
			out.MeasuredMakespan = opt.Makespan
		case "hybrid_cut_auto.xml":
			if d := firstDistribute(rw.After.Jobs); d != nil {
				out.GraphAutoPolicy = d.Policy.String()
			}
			out.AutoThreshold = firstThreshold(rw.After.Jobs)
		}
	}

	// The gauntlet: crash a rank mid-run through the fused muBLASTP plan.
	// Recovery granularity is per fused job, so this proves checkpointed
	// restart still lands on the literal bytes after fusion.
	refMakespan := out.Cases[0].OptimizedMakespan
	gauntlet := &faults.Plan{
		Seed:    opts.Seed + 8,
		Crashes: []faults.Crash{{Rank: 2, At: vtime.Duration(float64(refMakespan) * 0.4)}},
	}
	out.GauntletPlan = gauntlet.String()
	run := func() (*core.Result, *core.RecoveryReport, error) {
		cl := cluster.New(cluster.DefaultConfig(nodes))
		cl.SetFaultPlan(gauntlet)
		return core.ExecuteResilient(cl, fusedBlast, core.Input{LocalRows: spreadRows(blastData, cl.Size())}, nil)
	}
	res, rep, err := run()
	if err != nil {
		return nil, fmt.Errorf("optimizer gauntlet: %w", err)
	}
	out.GauntletMakespan = res.Makespan
	out.GauntletFailed = rep.Failed
	out.GauntletRounds = rep.Rounds
	out.GauntletIdentical = fingerprint(res.Partitions, false) == fingerprint(literalBlastParts, false)
	res2, _, err := run()
	if err != nil {
		return nil, fmt.Errorf("optimizer gauntlet replay: %w", err)
	}
	out.GauntletDeterministic = res2.Makespan == res.Makespan &&
		fingerprint(res2.Partitions, false) == fingerprint(res.Partitions, false)
	return out, nil
}

// Render prints the experiment.
func (r *OptimizerResult) Render() string {
	rows := make([][]string, 0, len(r.Cases))
	for _, c := range r.Cases {
		verdict := "IDENTICAL"
		if !c.Identical {
			verdict = "DIVERGED"
		}
		rules := "none"
		if len(c.Rules) > 0 {
			rules = fmt.Sprint(len(c.Rules))
		}
		rows = append(rows, []string{
			c.Workflow,
			fmt.Sprintf("%d->%d", c.JobsBefore, c.JobsAfter),
			rules,
			c.LiteralMakespan.String(),
			c.OptimizedMakespan.String(),
			fmt.Sprintf("%+.1f%%", -c.Reduction()),
			fmt.Sprintf("%d->%d", c.LiteralShuffle, c.OptimizedShuffle),
			verdict,
		})
	}
	s := "Plan optimizer: literal vs optimized execution (byte-identity required)\n" +
		table([]string{"workflow", "jobs", "rules", "literal", "optimized", "makespan", "shuffle bytes", "partitions"}, rows)
	s += fmt.Sprintf("\nauto policy selection: muBLASTP -> %s (want cyclic), PowerLyra -> %s (want graphVertexCut), threshold %d\n",
		r.BlastAutoPolicy, r.GraphAutoPolicy, r.AutoThreshold)
	if r.MeasuredMakespan > 0 {
		s += fmt.Sprintf("cost model calibration: predicted %v vs measured %v (%+.1f%% error)\n",
			r.PredictedMakespan, r.MeasuredMakespan,
			100*(float64(r.PredictedMakespan)/float64(r.MeasuredMakespan)-1))
	}
	det := "deterministic replay"
	if !r.GauntletDeterministic {
		det = "NON-DETERMINISTIC replay"
	}
	id := "literal bytes reproduced"
	if !r.GauntletIdentical {
		id = "OUTPUT DIVERGED"
	}
	s += fmt.Sprintf("fused-plan gauntlet [%s]: makespan %v, failed ranks %v, %d recovery rounds, %s, %s\n",
		r.GauntletPlan, r.GauntletMakespan, r.GauntletFailed, r.GauntletRounds, id, det)
	if r.Failed() {
		s += "RESULT: FAILED — at least one optimizer claim did not hold\n"
	} else {
		s += "RESULT: ok — all optimizer claims hold\n"
	}
	return s
}
