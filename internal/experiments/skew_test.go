package experiments

import (
	"strings"
	"testing"
)

// TestSkewReproducesPaperOrdering: the load-balance report must show the
// mechanism behind the paper's comparisons — block partitioning skews
// muBLASTP compute more than cyclic, and hash-based vertex-cut skews
// PageRank more than hybrid-cut, on every graph.
func TestSkewReproducesPaperOrdering(t *testing.T) {
	r, err := Skew(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]SkewRow{}
	for _, row := range r.Rows {
		byKey[row.Workflow+"/"+row.Dataset+"/"+row.Policy] = row
		if row.LoadImbalance < 1 {
			t.Errorf("%s/%s/%s: imbalance %.3f < 1", row.Workflow, row.Dataset, row.Policy, row.LoadImbalance)
		}
	}
	cyc := byKey["muBLASTP search/env_nr/cyclic"]
	blk := byKey["muBLASTP search/env_nr/block"]
	if cyc.Workflow == "" || blk.Workflow == "" {
		t.Fatalf("missing muBLASTP rows: %+v", r.Rows)
	}
	if blk.LoadImbalance <= cyc.LoadImbalance {
		t.Errorf("block imbalance %.3f not worse than cyclic %.3f", blk.LoadImbalance, cyc.LoadImbalance)
	}
	if blk.StragglerGap <= cyc.StragglerGap {
		t.Errorf("block straggler gap %v not worse than cyclic %v", blk.StragglerGap, cyc.StragglerGap)
	}
	for key, row := range byKey {
		if row.Workflow != "PageRank" || row.Policy != "hybrid-cut" {
			continue
		}
		hash := byKey[strings.Replace(key, "hybrid-cut", "hash (vertex-cut)", 1)]
		if hash.Workflow == "" {
			t.Fatalf("missing hash row for %s", key)
		}
		if hash.LoadImbalance < row.LoadImbalance {
			t.Errorf("%s: hash imbalance %.3f below hybrid-cut %.3f", row.Dataset, hash.LoadImbalance, row.LoadImbalance)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "imbalance") || !strings.Contains(out, "hybrid-cut") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}
