package experiments

import (
	"strings"
	"testing"
)

func TestOutOfCoreShape(t *testing.T) {
	r, err := OutOfCore(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Spill.SpillPages == 0 || r.Spill.RestorePages == 0 {
		t.Fatalf("budgeted run never touched disk: %+v", r.Spill)
	}
	if !r.Identical {
		t.Error("budgeted partitions differ from the in-memory reference")
	}
	if !r.MakespanIdentical {
		t.Errorf("makespan diverged: in-memory %v, budgeted %v", r.InMemoryMakespan, r.BudgetedMakespan)
	}
	if !r.ShuffleIdentical {
		t.Errorf("shuffle bytes diverged: in-memory %d, budgeted %d", r.InMemoryShuffle, r.BudgetedShuffle)
	}
	if len(r.GauntletFailed) != 1 || r.GauntletRounds < 1 {
		t.Errorf("gauntlet crash not recovered: failed=%v rounds=%d", r.GauntletFailed, r.GauntletRounds)
	}
	if !r.GauntletIdentical {
		t.Error("gauntlet partitions differ from the fault-free reference")
	}
	if !r.GauntletDeterministic {
		t.Error("gauntlet replay diverged")
	}
	if r.GauntletSpill.SpillPages == 0 {
		t.Error("gauntlet never spilled despite the budget")
	}
	if r.GauntletSpill.Retries == 0 && r.GauntletSpill.Failovers == 0 && r.GauntletSpill.RotDetected == 0 {
		t.Errorf("gauntlet disk faults left no trace: %+v", r.GauntletSpill)
	}
	if r.Failed() {
		t.Error("Failed() true although every check passed")
	}
	out := r.Render()
	if !strings.Contains(out, "Out-of-core") || !strings.Contains(out, "identical") {
		t.Errorf("Render incomplete:\n%s", out)
	}
}
