package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistryWellFormed pins the registry invariants the generated
// artifacts rely on: unique non-empty names, descriptions, runners.
func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete entry %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment name %q", e.Name)
		}
		if e.Name != strings.ToLower(e.Name) {
			t.Fatalf("experiment name %q is not lowercase", e.Name)
		}
		seen[e.Name] = true
	}
	if !seen["incremental"] {
		t.Fatal("registry is missing the incremental experiment")
	}
}

// TestHelpTextListsEveryExperiment keeps `-exp help` in lockstep with the
// registry.
func TestHelpTextListsEveryExperiment(t *testing.T) {
	help := HelpText()
	for _, e := range Registry() {
		if !strings.Contains(help, e.Name) || !strings.Contains(help, e.Desc) {
			t.Fatalf("help text is missing %q", e.Name)
		}
	}
}

// TestREADMEExperimentTable fails when the README's embedded experiment
// table drifts from the registry-generated one. The fix is mechanical:
// replace the block between the experiments markers with the output of
// experiments.TableMarkdown().
func TestREADMEExperimentTable(t *testing.T) {
	readme, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- experiments:begin -->", "<!-- experiments:end -->"
	text := string(readme)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md is missing the %s / %s markers", begin, end)
	}
	embedded := strings.TrimSpace(text[i+len(begin) : j])
	want := strings.TrimSpace(TableMarkdown())
	if embedded != want {
		t.Fatalf("README experiment table drifted from the registry.\n--- README ---\n%s\n--- registry ---\n%s", embedded, want)
	}
}
