package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/keyval"
	"repro/internal/vtime"
)

// ChaosScenario is one seeded fault schedule run against one workflow, with
// the recovered output compared against the fault-free reference.
type ChaosScenario struct {
	Workflow string
	// Plan is the fault plan's printable spec (seed + events).
	Plan string
	// Reference / Makespan are the fault-free and faulted virtual times.
	Reference vtime.Duration
	Makespan  vtime.Duration
	// CrashAt is the scheduled crash time (0 for crash-free plans).
	CrashAt vtime.Duration
	// Failed / Rounds / CheckpointBytes report what recovery did.
	Failed          []int
	Rounds          int
	CheckpointBytes int64
	// CorruptInjected / CorruptDetected / Retransmits are the corruption
	// ablation: payload damage injected by the plan, detections by the
	// transport's envelope checksum, and total retransmitted delivery
	// attempts (drops included). Injected == Detected or corruption slipped
	// through silently.
	CorruptInjected int64
	CorruptDetected int64
	Retransmits     int64
	// CkptFailovers counts checkpoint restores served by a buddy replica.
	CkptFailovers int64
	// SpillPages / SpillRetries / SpillFailovers / SpillRotDetected are the
	// disk-fault ablation: pages that went through the out-of-core spill
	// tier, write attempts retried after torn writes or ENOSPC, reads served
	// by the buddy replica path, and rotted frames caught by the run CRC.
	SpillPages       int64
	SpillRetries     int64
	SpillFailovers   int64
	SpillRotDetected int64
	// Identical reports the partition comparison against the reference
	// (raw order for the sort workflow, canonical order for hybrid-cut).
	Identical bool
	// Deterministic reports whether a replay with the same seed reproduced
	// the same makespan and output.
	Deterministic bool
}

// ChaosResult is the fault-injection sweep over the paper's two headline
// workflows (Fig. 8 muBLASTP, Fig. 10 hybrid-cut).
type ChaosResult struct {
	Scenarios []ChaosScenario
	// CheckpointOverheadPct is the zero-fault cost of job-boundary
	// checkpointing on the sort workflow, percent of the plain makespan.
	CheckpointOverheadPct float64
}

// Failed reports whether any scenario violated a correctness requirement:
// partitions diverging from the fault-free reference, a non-deterministic
// replay, or corruption accepted without detection. paperbench exits
// nonzero on it.
func (r *ChaosResult) Failed() bool {
	for _, sc := range r.Scenarios {
		if !sc.Identical || !sc.Deterministic || sc.CorruptInjected != sc.CorruptDetected {
			return true
		}
	}
	return false
}

// fingerprint hashes the partitions; canonical additionally sorts rows
// within each partition, for workflows whose membership is deterministic
// but intra-partition order is rank-count dependent.
func fingerprint(parts [][]core.Row, canonical bool) uint64 {
	h := fnv.New64a()
	for _, part := range parts {
		rows := make([]string, 0, len(part))
		for _, r := range part {
			rows = append(rows, string(core.EncodeRow(r)))
		}
		if canonical {
			sort.Strings(rows)
		}
		for _, r := range rows {
			h.Write([]byte(r))
			h.Write([]byte{0})
		}
		h.Write([]byte{0xFF})
	}
	return h.Sum64()
}

// chaosWorkflow bundles what the harness needs to torture one workflow.
type chaosWorkflow struct {
	name      string
	plan      *core.Plan
	rows      []core.Row
	nodes     int
	canonical bool
	crashRank int
}

// runChaos executes one fault plan twice (replay check) and compares the
// recovered output with the fault-free fingerprint. opts carries execution
// options — the disk-fault scenarios attach a spill budget through it.
func (w chaosWorkflow) runChaos(plan *faults.Plan, ref vtime.Duration, refFP uint64, opts core.ExecOptions) (ChaosScenario, error) {
	sc := ChaosScenario{Workflow: w.name, Plan: plan.String(), Reference: ref}
	if c, ok := plan.CrashFor(w.crashRank); ok {
		sc.CrashAt = c.At
	}
	run := func() (*core.Result, *core.RecoveryReport, cluster.Stats, error) {
		cl := cluster.New(cluster.DefaultConfig(w.nodes))
		cl.SetFaultPlan(plan)
		res, rep, err := core.ExecuteResilientOpts(cl, w.plan, core.Input{LocalRows: spreadRows(w.rows, cl.Size())}, nil, opts)
		return res, rep, cl.Stats(), err
	}
	res, rep, stats, err := run()
	if err != nil {
		return sc, fmt.Errorf("%s under %s: %w", w.name, plan, err)
	}
	sc.Makespan = res.Makespan
	sc.Failed = rep.Failed
	sc.Rounds = rep.Rounds
	sc.CheckpointBytes = rep.CheckpointBytes
	sc.CorruptInjected = stats.CorruptInjected
	sc.CorruptDetected = stats.CorruptDetected
	sc.Retransmits = stats.Retransmits
	sc.CkptFailovers = rep.CheckpointFailovers
	sc.SpillPages = stats.Spill.SpillPages
	sc.SpillRetries = stats.Spill.Retries
	sc.SpillFailovers = stats.Spill.Failovers
	sc.SpillRotDetected = stats.Spill.RotDetected
	sc.Identical = fingerprint(res.Partitions, w.canonical) == refFP
	res2, _, stats2, err := run()
	if err != nil {
		return sc, fmt.Errorf("%s replay under %s: %w", w.name, plan, err)
	}
	sc.Deterministic = res2.Makespan == res.Makespan &&
		stats2.CorruptInjected == stats.CorruptInjected &&
		stats2.Retransmits == stats.Retransmits &&
		stats2.Spill == stats.Spill &&
		fingerprint(res2.Partitions, w.canonical) == fingerprint(res.Partitions, w.canonical)
	return sc, nil
}

// Chaos runs the fault-injection sweep: for each workflow, a mid-run rank
// crash, a 5% message-drop schedule, a 5% payload-corruption schedule, and
// a combined crash + checkpoint-host-loss + corruption gauntlet — all
// seeded and replayed, requiring the recovered partitions to match the
// fault-free reference and every injected corruption to be detected.
//
// The sweep runs with the keyval page-CRC trailer enabled (end-to-end
// integrity, not just the transport envelope); reference and faulted runs
// share the mode, so their makespans stay comparable.
func Chaos(opts Options) (*ChaosResult, error) {
	opts = opts.withDefaults()
	defer keyval.SetPageCRC(keyval.SetPageCRC(true))
	nodes := opts.Nodes / 2
	if nodes < 2 {
		nodes = 2
	}

	db := blast.Generate(blast.EnvNR(), opts.BlastScale/2, opts.Seed)
	bplan, err := compileBlastPlan(nodes * 2)
	if err != nil {
		return nil, err
	}
	g := graph.Generate(graph.Google(), opts.GraphScale/2, opts.Seed)
	hplan, err := compileHybridPlan(nodes*2, 200)
	if err != nil {
		return nil, err
	}
	workflows := []chaosWorkflow{
		// Sort output is canonical: the recovered muBLASTP partitions must
		// match the reference byte for byte, raw order included.
		{name: "blast(Fig.8)", plan: bplan, rows: blastRows(db), nodes: nodes, canonical: false, crashRank: 2},
		// Hybrid-cut membership is hash-determined but intra-partition row
		// order depends on the surviving rank count: compare canonically.
		{name: "hybrid(Fig.10)", plan: hplan, rows: graphRows(g), nodes: nodes, canonical: true, crashRank: 2},
	}

	out := &ChaosResult{}
	for _, w := range workflows {
		// Fault-free reference (plain Execute: no checkpoint overhead).
		cl := cluster.New(cluster.DefaultConfig(w.nodes))
		ref, err := core.Execute(cl, w.plan, core.Input{LocalRows: spreadRows(w.rows, cl.Size())})
		if err != nil {
			return nil, fmt.Errorf("%s reference: %w", w.name, err)
		}
		refFP := fingerprint(ref.Partitions, w.canonical)

		if w.name == workflows[0].name {
			// Zero-fault checkpoint overhead on the sort workflow.
			cl2 := cluster.New(cluster.DefaultConfig(w.nodes))
			ckpt, _, err := core.ExecuteResilient(cl2, w.plan, core.Input{LocalRows: spreadRows(w.rows, cl2.Size())}, nil)
			if err != nil {
				return nil, fmt.Errorf("%s zero-fault resilient: %w", w.name, err)
			}
			out.CheckpointOverheadPct = 100 * (float64(ckpt.Makespan)/float64(ref.Makespan) - 1)
		}

		// Scenario A: one rank crash mid-run (~40% of the reference
		// makespan, which lands inside the shuffle-heavy phase).
		crash := &faults.Plan{
			Seed:    opts.Seed,
			Crashes: []faults.Crash{{Rank: w.crashRank, At: vtime.Duration(float64(ref.Makespan) * 0.4)}},
		}
		sc, err := w.runChaos(crash, ref.Makespan, refFP, core.ExecOptions{})
		if err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, sc)

		// Scenario B: 5% message drops (plus 1% duplicates), no crashes.
		drops := &faults.Plan{
			Seed: opts.Seed + 1,
			Link: faults.Link{DropProb: 0.05, DupProb: 0.01},
		}
		sc, err = w.runChaos(drops, ref.Makespan, refFP, core.ExecOptions{})
		if err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, sc)

		// Scenario C: 5% payload corruption, no crashes. Every damaged
		// delivery must be caught by the envelope checksum and retransmitted.
		corrupt := &faults.Plan{
			Seed: opts.Seed + 2,
			Link: faults.Link{CorruptProb: 0.05},
		}
		sc, err = w.runChaos(corrupt, ref.Makespan, refFP, core.ExecOptions{})
		if err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, sc)

		// Scenario D: the silent-fault gauntlet — a mid-run crash, the loss
		// of the crashed rank's checkpoint host (restores must fail over to
		// the buddy replica), and a corrupting link, all at once.
		gauntlet := &faults.Plan{
			Seed:     opts.Seed + 3,
			Crashes:  []faults.Crash{{Rank: w.crashRank, At: vtime.Duration(float64(ref.Makespan) * 0.4)}},
			CkptLoss: []int{w.crashRank},
			Link:     faults.Link{CorruptProb: 0.05},
		}
		sc, err = w.runChaos(gauntlet, ref.Makespan, refFP, core.ExecOptions{})
		if err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, sc)

		// Scenarios E and F torture the out-of-core tier: a memory budget
		// small enough that the shuffle-heavy phases must spill, with a
		// replicated disk path. The budget is derived from the workflow's own
		// traffic so both workflows spill at comparable depth.
		budget := ref.ShuffleBytes / int64(w.nodes*2*4)
		if budget < 4<<10 {
			budget = 4 << 10
		}
		spillOpts := core.ExecOptions{Spill: core.SpillOptions{MemBudget: budget, Replicate: true}}

		// Scenario E: ENOSPC on 30% of new runs plus 20% torn writes,
		// mid-shuffle. Writes must retry onto the buddy path and the output
		// stay identical.
		enospc := &faults.Plan{
			Seed: opts.Seed + 4,
			Disk: faults.Disk{ENOSPCProb: 0.3, TornProb: 0.2},
		}
		sc, err = w.runChaos(enospc, ref.Makespan, refFP, spillOpts)
		if err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, sc)

		// Scenario F: 2% of stored frame replicas rot before they are read
		// back. The run CRC must catch every rotted frame and the read fail
		// over to the intact replica.
		rot := &faults.Plan{
			Seed: opts.Seed + 5,
			Disk: faults.Disk{RotProb: 0.02},
		}
		sc, err = w.runChaos(rot, ref.Makespan, refFP, spillOpts)
		if err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, sc)
	}
	return out, nil
}

// Render prints the chaos sweep as a table.
func (r *ChaosResult) Render() string {
	rows := make([][]string, 0, len(r.Scenarios))
	for _, sc := range r.Scenarios {
		verdict := "MISMATCH"
		if sc.Identical {
			verdict = "identical"
		}
		replay := "DIVERGED"
		if sc.Deterministic {
			replay = "replayable"
		}
		overhead := 100 * (float64(sc.Makespan)/float64(sc.Reference) - 1)
		integrity := fmt.Sprintf("inj=%d det=%d rtx=%d", sc.CorruptInjected, sc.CorruptDetected, sc.Retransmits)
		if sc.CorruptInjected != sc.CorruptDetected {
			integrity += " SILENT"
		}
		if sc.CkptFailovers > 0 {
			integrity += fmt.Sprintf(" fo=%d", sc.CkptFailovers)
		}
		if sc.SpillPages > 0 {
			integrity += fmt.Sprintf(" spill=%d retry=%d spfo=%d rot=%d",
				sc.SpillPages, sc.SpillRetries, sc.SpillFailovers, sc.SpillRotDetected)
		}
		rows = append(rows, []string{
			sc.Workflow,
			sc.Plan,
			fmt.Sprintf("%v -> %v (+%.0f%%)", sc.Reference, sc.Makespan, overhead),
			fmt.Sprintf("failed=%v rounds=%d", sc.Failed, sc.Rounds),
			integrity,
			verdict,
			replay,
		})
	}
	return fmt.Sprintf("Fault injection (crash mid-run, 5%% drops, 5%% corruption, crash+checkpoint-loss, disk ENOSPC+torn writes, disk rot) on the two headline workflows.\n"+
		"Zero-fault checkpoint overhead (blast): %.1f%% of makespan. Page CRC trailers enabled for the sweep.\n%s",
		r.CheckpointOverheadPct,
		table([]string{"workflow", "fault plan", "makespan", "recovery", "integrity", "partitions", "replay"}, rows))
}
