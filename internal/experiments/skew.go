package experiments

import (
	"fmt"

	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/obsv"
	"repro/internal/pagerank"
	"repro/internal/powerlyra"
	"repro/internal/vtime"
)

// SkewRow is one (workflow, dataset, policy) load-balance measurement,
// computed from the observability layer's per-rank compute spans rather than
// from makespans alone.
type SkewRow struct {
	Workflow string
	Dataset  string
	Policy   string
	Ranks    int
	// LoadImbalance is max/mean per-rank busy time (1.0 = perfect balance).
	LoadImbalance float64
	// StragglerGap is the slowest rank's finish minus the mean finish.
	StragglerGap vtime.Duration
	Makespan     vtime.Duration
}

// SkewResult is the load-balance report behind the paper's partition-quality
// claims: Fig. 12 (cyclic beats block for muBLASTP because block concentrates
// the long sequences of a sorted database on the last ranks) and Fig. 14
// (hybrid-cut beats hash-based vertex-cut for power-law graphs). Where those
// figures compare end-to-end times, this report shows the mechanism — the
// per-rank compute-time skew each policy induces.
type SkewResult struct {
	Rows []SkewRow
}

// Skew measures per-rank load imbalance under each partitioning policy by
// attaching a metrics recorder to the simulated cluster.
func Skew(opts Options) (*SkewResult, error) {
	opts = opts.withDefaults()
	res := &SkewResult{}

	// muBLASTP search: cyclic vs block over the sorted database (§IV-B).
	for _, prof := range []blast.Profile{blast.EnvNR()} {
		db := blast.Generate(prof, opts.BlastScale, opts.Seed)
		batch := blast.MakeBatch("mixed", db, 100, 0, opts.Seed+3)
		np := opts.Nodes * 2
		for _, pol := range []struct {
			name  string
			parts []blast.Partition
		}{
			{"cyclic", blast.CyclicPartition(db.Entries, np)},
			{"block", blast.BlockPartition(db.Entries, np)},
		} {
			cfg := cluster.DefaultConfig(np)
			cfg.RanksPerNode = 1
			cl := cluster.New(cfg)
			rec := obsv.NewRecorder()
			cl.SetObserver(rec)
			if _, err := blast.DistributedSearch(cl, pol.parts, batch); err != nil {
				return nil, err
			}
			m := rec.Metrics()
			res.Rows = append(res.Rows, SkewRow{
				Workflow: "muBLASTP search", Dataset: prof.Name, Policy: pol.name, Ranks: np,
				LoadImbalance: m.LoadImbalance,
				StragglerGap:  vtime.Duration(m.StragglerGapNS),
				Makespan:      vtime.Duration(m.MakespanNS),
			})
		}
	}

	// PageRank: hybrid-cut vs hash-based vertex-cut (PowerGraph style).
	const iters = 5
	for _, prof := range graph.Profiles() {
		g := graph.Generate(prof, opts.GraphScale, opts.Seed)
		for _, pol := range []struct {
			name   string
			method powerlyra.Method
		}{
			{"hybrid-cut", powerlyra.HybridCut},
			{"hash (vertex-cut)", powerlyra.VertexCut},
		} {
			a, err := powerlyra.Partition(g, pol.method, opts.Nodes*2, powerlyra.DefaultThreshold)
			if err != nil {
				return nil, err
			}
			cl := cluster.New(cluster.DefaultConfig(opts.Nodes))
			rec := obsv.NewRecorder()
			cl.SetObserver(rec)
			if _, err := pagerank.Distributed(cl, a, iters); err != nil {
				return nil, err
			}
			m := rec.Metrics()
			res.Rows = append(res.Rows, SkewRow{
				Workflow: "PageRank", Dataset: prof.Name, Policy: pol.name, Ranks: cl.Size(),
				LoadImbalance: m.LoadImbalance,
				StragglerGap:  vtime.Duration(m.StragglerGapNS),
				Makespan:      vtime.Duration(m.MakespanNS),
			})
		}
	}
	return res, nil
}

// Render prints the report as a table.
func (r *SkewResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workflow, row.Dataset, row.Policy, fmt.Sprint(row.Ranks),
			fmt.Sprintf("%.2fx", row.LoadImbalance),
			row.StragglerGap.String(), row.Makespan.String(),
		})
	}
	return "Load-balance report: per-rank compute skew by partitioning policy\n" +
		table([]string{"workflow", "dataset", "policy", "ranks", "imbalance", "straggler gap", "makespan"}, rows)
}
