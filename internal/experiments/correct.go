package experiments

import (
	"fmt"

	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/powerlyra"
)

// CorrectnessResult is the §IV "Correctness" comparison: for the same
// input, the PaPar-generated partitioner must produce the same partitions
// as the application's own partitioning program.
type CorrectnessResult struct {
	// BlastCyclicEqual / BlastBlockEqual report the muBLASTP comparisons.
	BlastCyclicEqual bool
	BlastBlockEqual  bool
	// HybridEqual reports the PowerLyra hybrid-cut comparison
	// (per-partition edge multisets; the engines may order edges within a
	// partition differently, which does not affect the consuming
	// application).
	HybridEqual bool
	Details     []string
}

// Correctness runs both comparisons at the configured scale.
func Correctness(opts Options) (*CorrectnessResult, error) {
	opts = opts.withDefaults()
	res := &CorrectnessResult{}

	// --- muBLASTP: cyclic ---
	db := blast.Generate(blast.EnvNR(), opts.BlastScale/4, opts.Seed)
	np := opts.Nodes * 2
	plan, err := compileBlastPlan(np)
	if err != nil {
		return nil, err
	}
	cl := cluster.New(cluster.DefaultConfig(opts.Nodes))
	out, err := core.Execute(cl, plan, core.Input{LocalRows: spreadRows(blastRows(db), cl.Size())})
	if err != nil {
		return nil, err
	}
	got, err := partitionsToEntries(plan, out.Partitions)
	if err != nil {
		return nil, err
	}
	ref := blast.CyclicPartition(db.Entries, np)
	res.BlastCyclicEqual = true
	for p := range ref {
		if !ref[p].SameAsRows(got[p]) {
			res.BlastCyclicEqual = false
			res.Details = append(res.Details, fmt.Sprintf("blast cyclic: partition %d differs", p))
		}
	}

	// --- muBLASTP: block (the default method) ---
	blockPlan := *plan
	blockPlan.Jobs = []core.Job{plan.Jobs[1]} // distribute only
	bj := *plan.Jobs[1].(*core.DistributeJob)
	bj.Policy = core.Block
	blockPlan.Jobs[0] = &bj
	out, err = core.Execute(cl, &blockPlan, core.Input{LocalRows: spreadRows(blastRows(db), cl.Size())})
	if err != nil {
		return nil, err
	}
	got, err = partitionsToEntries(plan, out.Partitions)
	if err != nil {
		return nil, err
	}
	refBlock := blast.BlockPartition(db.Entries, np)
	res.BlastBlockEqual = true
	for p := range refBlock {
		if !refBlock[p].SameAsRows(got[p]) {
			res.BlastBlockEqual = false
			res.Details = append(res.Details, fmt.Sprintf("blast block: partition %d differs", p))
		}
	}

	// --- PowerLyra hybrid-cut ---
	g := graph.Generate(graph.Google(), opts.GraphScale/4, opts.Seed)
	hplan, err := compileHybridPlan(np, powerlyra.DefaultThreshold)
	if err != nil {
		return nil, err
	}
	hout, err := core.Execute(cl, hplan, core.Input{LocalRows: spreadRows(graphRows(g), cl.Size())})
	if err != nil {
		return nil, err
	}
	gotEdges, err := partitionsToEdges(hout.Partitions)
	if err != nil {
		return nil, err
	}
	refAsg, err := powerlyra.Partition(g, powerlyra.HybridCut, np, powerlyra.DefaultThreshold)
	if err != nil {
		return nil, err
	}
	refEdges := refAsg.PartitionEdges()
	res.HybridEqual = true
	for p := 0; p < np; p++ {
		if !sameEdgeMultiset(gotEdges[p], refEdges[p]) {
			res.HybridEqual = false
			res.Details = append(res.Details, fmt.Sprintf("hybrid: partition %d differs (%d vs %d edges)",
				p, len(gotEdges[p]), len(refEdges[p])))
		}
	}
	return res, nil
}

func sameEdgeMultiset(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[graph.Edge]int, len(a))
	for _, e := range a {
		count[e]++
	}
	for _, e := range b {
		count[e]--
		if count[e] < 0 {
			return false
		}
	}
	return true
}

// AllEqual reports whether every comparison matched.
func (r *CorrectnessResult) AllEqual() bool {
	return r.BlastCyclicEqual && r.BlastBlockEqual && r.HybridEqual
}

// Render prints the outcome.
func (r *CorrectnessResult) Render() string {
	rows := [][]string{
		{"muBLASTP cyclic", okStr(r.BlastCyclicEqual)},
		{"muBLASTP block", okStr(r.BlastBlockEqual)},
		{"PowerLyra hybrid-cut", okStr(r.HybridEqual)},
	}
	out := "Correctness (§IV): PaPar partitions vs application partitions\n" +
		table([]string{"comparison", "identical"}, rows)
	for _, d := range r.Details {
		out += "  " + d + "\n"
	}
	return out
}

func okStr(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
