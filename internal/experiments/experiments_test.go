package experiments

import (
	"strings"
	"testing"
)

// testOpts shrinks datasets so the whole suite runs quickly while keeping
// the paper's compute-versus-communication balance.
func testOpts() Options {
	return Options{BlastScale: 0.005, GraphScale: 0.005, Nodes: 8, Seed: 7}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.BlastScale <= 0 || o.GraphScale <= 0 || o.Nodes != 16 || o.Seed == 0 {
		t.Fatalf("defaults = %+v", o)
	}
	// Explicit values survive.
	o = Options{Nodes: 4}.withDefaults()
	if o.Nodes != 4 {
		t.Fatalf("explicit nodes overridden: %+v", o)
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 { // 2 dbs x 2 node counts x 3 batches
		t.Fatalf("got %d rows, want 12", len(r.Rows))
	}
	ratios := map[string]float64{}
	for _, row := range r.Rows {
		// Headline: cyclic wins everywhere ("the cyclic policy is the clear
		// winner", §IV-B).
		if row.BlockOverCyclic <= 1.0 {
			t.Errorf("%s/%d/%s: block (%.3f) not slower than cyclic",
				row.Database, row.Nodes, row.Batch, row.BlockOverCyclic)
		}
		ratios[row.Database+"/"+row.Batch+"/"+itoa(row.Nodes)] = row.BlockOverCyclic
	}
	// "the cyclic policy can achieve more performance benefits for the
	// larger batch": 500 beats 100 for every db and node count.
	for _, db := range []string{"env_nr", "nr"} {
		for _, n := range []string{"4", "8"} {
			if ratios[db+"/500/"+n] <= ratios[db+"/100/"+n] {
				t.Errorf("%s nodes=%s: batch 500 ratio %.3f not above batch 100 ratio %.3f",
					db, n, ratios[db+"/500/"+n], ratios[db+"/100/"+n])
			}
		}
	}
	if !strings.Contains(r.Render(), "Figure 12") {
		t.Error("Render missing title")
	}
}

func itoa(n int) string {
	if n == 4 {
		return "4"
	}
	if n == 8 {
		return "8"
	}
	return "?"
}

func TestFig13aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster sweep; skipped in -short mode")
	}
	opts := testOpts()
	opts.BlastScale = 0.01
	r, err := Fig13a(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	var envSpeedup, nrSpeedup float64
	for _, row := range r.Rows {
		// PaPar on the cluster beats the single-node baseline.
		if row.Speedup <= 1.5 {
			t.Errorf("%s: speedup %.2f too small", row.Database, row.Speedup)
		}
		// Scaling out helps PaPar itself.
		if row.PaParTime16 >= row.PaParTime1 {
			t.Errorf("%s: 16-node PaPar (%v) not faster than 1-node (%v)",
				row.Database, row.PaParTime16, row.PaParTime1)
		}
		switch row.Database {
		case "env_nr":
			envSpeedup = row.Speedup
		case "nr":
			nrSpeedup = row.Speedup
		}
	}
	// The bigger database shows the bigger speedup (8.6x vs 20.2x in the
	// paper).
	if nrSpeedup <= envSpeedup {
		t.Errorf("nr speedup %.2f not above env_nr %.2f", nrSpeedup, envSpeedup)
	}
	if !strings.Contains(r.Render(), "muBLASTP") {
		t.Error("Render missing baseline column")
	}
}

func TestFig13bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster sweep; skipped in -short mode")
	}
	opts := testOpts()
	opts.BlastScale = 0.01
	r, err := Fig13b(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range r.Databases {
		sp := r.Speedups[db]
		if sp[0] != 1.0 {
			t.Errorf("%s: first speedup %.2f, want 1.0", db, sp[0])
		}
		for i := 1; i < len(sp); i++ {
			if sp[i] < sp[i-1]*0.95 {
				t.Errorf("%s: speedup regressed at %d nodes: %v", db, r.Nodes[i], sp)
			}
		}
		if final := sp[len(sp)-1]; final < 2 {
			t.Errorf("%s: final speedup %.2f too low", db, final)
		}
	}
	if !strings.Contains(r.Render(), "strong scaling") {
		t.Error("Render missing title")
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := Table2(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stats) != 3 {
		t.Fatalf("got %d datasets", len(r.Stats))
	}
	names := []string{"Google", "Pokec", "LiveJournal"}
	for i, s := range r.Stats {
		if s.Name != names[i] {
			t.Errorf("row %d = %s, want %s (paper order)", i, s.Name, names[i])
		}
		if s.Type != "Directed" || s.Vertices <= 0 || s.Edges <= 0 || s.Triangles <= 0 {
			t.Errorf("stats row %+v incomplete", s)
		}
	}
	// Relative sizes follow Table II: LiveJournal > Pokec > Google in
	// both vertices and edges.
	if !(r.Stats[2].Edges > r.Stats[1].Edges && r.Stats[1].Edges > r.Stats[0].Edges) {
		t.Errorf("edge ordering wrong: %v", r.Stats)
	}
	if !strings.Contains(r.Render(), "Triangles") {
		t.Error("Render missing column")
	}
}

func TestFig14Shape(t *testing.T) {
	r, err := Fig14(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 { // 3 graphs x 2 node counts
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// "The hybrid-cut can deliver the best performance as we expected."
		if row.Vertex <= 1.0 {
			t.Errorf("%s/%d: vertex-cut %.2f not behind hybrid", row.Graph, row.Nodes, row.Vertex)
		}
		// "the vertex-cut, instead of the edge-cut, has the closer
		// performance to the hybrid-cut."
		if row.Edge <= row.Vertex {
			t.Errorf("%s/%d: edge-cut %.2f not behind vertex-cut %.2f",
				row.Graph, row.Nodes, row.Edge, row.Vertex)
		}
	}
	if !strings.Contains(r.Render(), "hybrid-cut") {
		t.Error("Render missing column")
	}
}

func TestFig15aShape(t *testing.T) {
	r, err := Fig15a(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	byName := map[string]Fig15Row{}
	for _, row := range r.Rows {
		byName[row.Graph] = row
	}
	// PowerLyra wins the small graph; PaPar wins the big one; the speedup
	// grows with graph size (the §IV-C communication-vs-single-node story).
	if byName["Google"].PaParSpeedup >= 1.0 {
		t.Errorf("Google: PaPar %.2fx should lose to PowerLyra", byName["Google"].PaParSpeedup)
	}
	if byName["LiveJournal"].PaParSpeedup <= 1.0 {
		t.Errorf("LiveJournal: PaPar %.2fx should beat PowerLyra", byName["LiveJournal"].PaParSpeedup)
	}
	if !(byName["Google"].PaParSpeedup < byName["LiveJournal"].PaParSpeedup) {
		t.Errorf("speedup not growing with graph size: %+v", r.Rows)
	}
}

func TestFig15bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster sweep; skipped in -short mode")
	}
	r, err := Fig15b(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Nodes) - 1
	for _, g := range r.Graphs {
		// "PaPar can scale up to 16 nodes for all three datasets."
		if r.PaPar[g][last] <= 1.0 {
			t.Errorf("PaPar does not scale on %s: %v", g, r.PaPar[g])
		}
	}
	// PowerLyra's scaling ceiling on Google sits below its ceiling on the
	// larger graphs ("cannot scale on multiple nodes for the Google
	// dataset").
	maxOf := func(xs []float64) float64 {
		m := xs[0]
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(r.PowerLyra["Google"]) >= maxOf(r.PowerLyra["LiveJournal"]) {
		t.Errorf("PowerLyra Google ceiling %.2f not below LiveJournal %.2f",
			maxOf(r.PowerLyra["Google"]), maxOf(r.PowerLyra["LiveJournal"]))
	}
	// And on Google it falls back from its peak at the full cluster.
	if r.PowerLyra["Google"][last] >= maxOf(r.PowerLyra["Google"]) {
		t.Errorf("PowerLyra Google should retreat from its peak: %v", r.PowerLyra["Google"])
	}
	if !strings.Contains(r.Render(), "PowerLyra/Google") {
		t.Error("Render missing row")
	}
}

func TestCompressionShape(t *testing.T) {
	r, err := Compression(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Saving <= 0 || row.Saving >= 0.6 {
			t.Errorf("%s: saving %.1f%% out of plausible range", row.Graph, row.Saving*100)
		}
		if row.CompressedBytes >= row.RawBytes {
			t.Errorf("%s: CSC (%d) not smaller than packed (%d)", row.Graph, row.CompressedBytes, row.RawBytes)
		}
		if row.TransferSaving <= 0 {
			t.Errorf("%s: no wire time saved", row.Graph)
		}
	}
}

func TestCorrectnessAllEqual(t *testing.T) {
	r, err := Correctness(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllEqual() {
		t.Fatalf("correctness failed:\n%s", r.Render())
	}
	if !strings.Contains(r.Render(), "yes") {
		t.Error("Render missing verdicts")
	}
}

func TestConnectedComponentsShape(t *testing.T) {
	opts := testOpts()
	opts.GraphScale = 0.002
	r, err := ConnectedComponents(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Components <= 0 || row.Iterations <= 0 {
			t.Fatalf("%s: incomplete row %+v", row.Graph, row)
		}
		if row.Vertex <= 1.0 || row.Edge <= row.Vertex {
			t.Errorf("%s: cut ordering broken: 1.00 / %.2f / %.2f", row.Graph, row.Vertex, row.Edge)
		}
	}
	if !strings.Contains(r.Render(), "Connected Components") {
		t.Error("Render missing title")
	}
}

func TestAblationsShape(t *testing.T) {
	r, err := Ablations(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.SampledImbalance >= r.UniformImbalance {
		t.Errorf("sampling (%.2f) not better than uniform (%.2f)", r.SampledImbalance, r.UniformImbalance)
	}
	if r.CollectiveTime <= 0 || r.P2PTime <= 0 {
		t.Errorf("transport times missing: %+v", r)
	}
	if r.EthernetTime <= r.IBTime {
		t.Errorf("ethernet (%v) not slower than IB (%v)", r.EthernetTime, r.IBTime)
	}
	if r.BalancedImbalance > r.HashImbalance {
		t.Errorf("balanced (%.2f) worse than hash (%.2f)", r.BalancedImbalance, r.HashImbalance)
	}
	if !strings.Contains(r.Render(), "Ablations") {
		t.Error("Render missing title")
	}
}
