package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/service"
)

// serviceJobs is the load-test size: how many jobs the throughput scenario
// pushes through the daemon (thousands, per the service tier's design
// target; they fan out over a handful of cached runtimes, so the wall cost
// is execution, not dataset generation).
const serviceJobs = 2000

// ServiceResult is the papard service-tier load test: throughput under a
// realistic mix, overload shedding, retry/deadline behaviour, fair-share
// accounting, and the crash-recovery invariant. JSON carries only
// deterministic invariants (counts, checksums, verdicts) so CI can run the
// experiment twice and byte-compare; wall-clock figures are render-only.
type ServiceResult struct {
	// Jobs / Completed are the throughput scenario: every submitted job must
	// complete (the budget is generous; admission sheds nothing here).
	Jobs      int   `json:"jobs"`
	Completed int64 `json:"completed"`
	// FleetChecksum folds every job's partition fingerprint, in submission
	// order, into one value: the whole sweep's output in one number.
	FleetChecksum string `json:"fleet_checksum"`
	// P99WithinBudget is the acceptance criterion: p99 accepted-job latency
	// inside the deadline budget.
	P99WithinBudget bool `json:"p99_within_budget"`

	// ShedOverLimit jobs were rejected 429 once the queue hit its cap;
	// BudgetShedRetryAfter reports that a cost-model rejection carried a
	// positive Retry-After hint.
	ShedOverLimit        int64 `json:"shed_over_limit"`
	BudgetShedRetryAfter bool  `json:"budget_shed_retry_after"`

	// RetriedAttempts is the attempt count of a job whose first two attempts
	// were doomed (want 3); RetryChecksumMatch compares its partitions with
	// an untroubled run (exactly-once effect).
	RetriedAttempts    int  `json:"retried_attempts"`
	RetryChecksumMatch bool `json:"retry_checksum_match"`
	// DeadlineEnforced: a job that keeps failing runs out of wall clock and
	// fails with a deadline error instead of retrying forever.
	DeadlineEnforced bool `json:"deadline_enforced"`

	// TenantUsageNS is the fair-share ledger after a two-tenant run: per
	// tenant, the summed virtual makespan of its completed jobs.
	TenantUsageNS map[string]int64 `json:"tenant_usage_ns"`

	// CrashJobs were accepted by a server that was then crashed mid-flight;
	// CrashChecksumsMatch compares every recovered job's checksum against an
	// uninterrupted reference server, and CrashPersistIdentical
	// byte-compares the persisted partition files themselves.
	CrashJobs             int  `json:"crash_jobs"`
	CrashRecovered        bool `json:"crash_recovered"`
	CrashChecksumsMatch   bool `json:"crash_checksums_match"`
	CrashPersistIdentical bool `json:"crash_persist_identical"`

	// Wall-clock figures: meaningful in the report, poison for determinism
	// diffs, so they stay out of the JSON.
	P50MS          float64 `json:"-"`
	P99MS          float64 `json:"-"`
	WallSeconds    float64 `json:"-"`
	JobsPerSecond  float64 `json:"-"`
	Retries        int64   `json:"-"`
	RecoveredCount int64   `json:"-"`
	JournalAppends int64   `json:"-"`
	BudgetMS       float64 `json:"-"`
}

// Failed gates paperbench's exit code on the robustness invariants.
func (r *ServiceResult) Failed() bool {
	return r.Completed != int64(r.Jobs) ||
		!r.P99WithinBudget ||
		r.ShedOverLimit == 0 || !r.BudgetShedRetryAfter ||
		r.RetriedAttempts != 3 || !r.RetryChecksumMatch ||
		!r.DeadlineEnforced ||
		!r.CrashRecovered || !r.CrashChecksumsMatch || !r.CrashPersistIdentical
}

// serviceSpecs is the throughput mix: two tenants, both workflows, two
// seeds — eight distinct runtimes the daemon keeps resident.
func serviceSpecs(seed int64) []service.JobSpec {
	var specs []service.JobSpec
	for _, tenant := range []string{"alpha", "beta"} {
		for _, s := range []int64{seed, seed + 1} {
			specs = append(specs,
				service.JobSpec{
					Workflow: "blast_partition",
					Dataset:  service.DatasetSpec{Kind: "blast", Profile: "env_nr", Scale: 0.001, Seed: s},
					Args:     map[string]string{"num_partitions": "8"},
					Tenant:   tenant,
				},
				service.JobSpec{
					Workflow: "hybrid_cut",
					Dataset:  service.DatasetSpec{Kind: "graph", Profile: "google", Scale: 0.001, Seed: s},
					Args:     map[string]string{"num_partitions": "8", "threshold": "50"},
					Tenant:   tenant,
				})
		}
	}
	return specs
}

// Service is the papard service-tier experiment (paperbench -exp service).
func Service(o Options) (*ServiceResult, error) {
	o = o.withDefaults()
	r := &ServiceResult{Jobs: serviceJobs}

	if err := serviceThroughput(o, r); err != nil {
		return nil, err
	}
	if err := serviceOverload(o, r); err != nil {
		return nil, err
	}
	if err := serviceRetryDeadline(o, r); err != nil {
		return nil, err
	}
	if err := serviceFairShare(o, r); err != nil {
		return nil, err
	}
	if err := serviceCrashRecovery(o, r); err != nil {
		return nil, err
	}
	return r, nil
}

// serviceThroughput drives thousands of jobs through a warm daemon and
// checks the latency acceptance criterion.
func serviceThroughput(o Options, r *ServiceResult) error {
	// The budget leaves an order of magnitude of headroom over the measured
	// p99 (~20s of queue wait when all jobs arrive at once): the criterion
	// guards against latency collapse, not machine-speed variance.
	budget := 5 * time.Minute
	s, err := service.New(service.Config{Nodes: 2, Workers: 4, Budget: budget, QueueLimit: serviceJobs + 1})
	if err != nil {
		return err
	}
	s.Start()
	defer s.Drain()

	specs := serviceSpecs(o.Seed)
	start := time.Now()
	jobs := make([]*service.Job, 0, serviceJobs)
	for i := 0; i < serviceJobs; i++ {
		j, aerr := s.Submit(specs[i%len(specs)])
		if aerr != nil {
			return fmt.Errorf("service: throughput submit %d: %s", i, aerr.Reason)
		}
		jobs = append(jobs, j)
	}
	if !s.WaitIdle(10 * time.Minute) {
		return fmt.Errorf("service: throughput load did not drain")
	}
	r.WallSeconds = time.Since(start).Seconds()
	if r.WallSeconds > 0 {
		r.JobsPerSecond = float64(serviceJobs) / r.WallSeconds
	}
	h := fnv.New64a()
	for _, j := range jobs {
		<-j.Done()
		if j.State != service.StateDone {
			return fmt.Errorf("service: throughput job %s: %s %s", j.ID, j.State, j.Error)
		}
		binary.Write(h, binary.LittleEndian, j.Checksum)
	}
	r.FleetChecksum = fmt.Sprintf("%016x", h.Sum64())
	snap := s.Snapshot()
	r.Completed = snap.Completed
	r.P50MS, r.P99MS = snap.P50MS, snap.P99MS
	r.BudgetMS = float64(budget) / float64(time.Millisecond)
	r.P99WithinBudget = snap.P99MS < r.BudgetMS
	return nil
}

// serviceOverload checks both shedding paths: the queue cap and the
// cost-model budget.
func serviceOverload(o Options, r *ServiceResult) error {
	// Queue cap: a stopped server (no workers) fills its 8-slot queue; the
	// overflow must shed deterministically.
	s, err := service.New(service.Config{Nodes: 2, Workers: 1, QueueLimit: 8, Budget: time.Hour})
	if err != nil {
		return err
	}
	spec := serviceSpecs(o.Seed)[0]
	for i := 0; i < 20; i++ {
		sp := spec
		sp.Tenant = fmt.Sprintf("t%d", i) // spread tenants; the cap is global
		if _, aerr := s.Submit(sp); aerr != nil {
			if aerr.Status != 429 {
				return fmt.Errorf("service: overload submit: status %d: %s", aerr.Status, aerr.Reason)
			}
			r.ShedOverLimit++
		}
	}
	s.Drain()

	// Budget: a 1ns deadline budget cannot fit any predicted run; the
	// rejection must carry a Retry-After hint.
	tight, err := service.New(service.Config{Nodes: 2, Workers: 1, Budget: time.Nanosecond})
	if err != nil {
		return err
	}
	defer tight.Drain()
	_, aerr := tight.Submit(spec)
	r.BudgetShedRetryAfter = aerr != nil && aerr.Status == 429 && aerr.RetryAfter > 0
	return nil
}

// serviceRetryDeadline exercises the backoff loop and the deadline cutoff.
func serviceRetryDeadline(o Options, r *ServiceResult) error {
	s, err := service.New(service.Config{Nodes: 2, Workers: 1, RetryMax: 3, RetryBase: time.Millisecond})
	if err != nil {
		return err
	}
	s.Start()
	defer s.Drain()
	specs := serviceSpecs(o.Seed)

	clean, aerr := s.Submit(specs[0])
	if aerr != nil {
		return fmt.Errorf("service: retry reference: %s", aerr.Reason)
	}
	flaky := specs[0]
	flaky.FailAttempts = 2
	j, aerr := s.Submit(flaky)
	if aerr != nil {
		return fmt.Errorf("service: retry submit: %s", aerr.Reason)
	}
	<-clean.Done()
	<-j.Done()
	r.RetriedAttempts = j.Attempts
	r.RetryChecksumMatch = j.State == service.StateDone && j.Checksum == clean.Checksum
	r.Retries = s.Snapshot().Retries

	// Deadline: on a fresh server (calibration still 1.0, so admission is
	// deterministic) a job that fails every attempt must be cut off by its
	// wall-clock deadline, not run its enormous retry allowance dry.
	ds, err := service.New(service.Config{Nodes: 2, Workers: 1, RetryMax: 1 << 20, RetryBase: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	ds.Start()
	defer ds.Drain()
	doomed := specs[0]
	doomed.FailAttempts = 1 << 20
	doomed.DeadlineMS = 80
	dj, aerr := ds.Submit(doomed)
	if aerr != nil {
		return fmt.Errorf("service: deadline submit: %s", aerr.Reason)
	}
	<-dj.Done()
	r.DeadlineEnforced = dj.State == service.StateFailed && strings.Contains(dj.Error, "deadline")
	return nil
}

// serviceFairShare runs a flooding tenant against a light one and records
// the virtual-time ledger (deterministic: sums of virtual makespans).
func serviceFairShare(o Options, r *ServiceResult) error {
	s, err := service.New(service.Config{Nodes: 2, Workers: 1, QueueLimit: 64, Budget: time.Hour})
	if err != nil {
		return err
	}
	specs := serviceSpecs(o.Seed)
	// Queue everything before starting the worker so dispatch order is pure
	// fair share, not submission timing.
	for i := 0; i < 12; i++ {
		sp := specs[i%4]
		sp.Tenant = "flood"
		if _, aerr := s.Submit(sp); aerr != nil {
			return fmt.Errorf("service: fairshare flood: %s", aerr.Reason)
		}
	}
	for i := 0; i < 3; i++ {
		sp := specs[i]
		sp.Tenant = "light"
		if _, aerr := s.Submit(sp); aerr != nil {
			return fmt.Errorf("service: fairshare light: %s", aerr.Reason)
		}
	}
	s.Start()
	defer s.Drain()
	if !s.WaitIdle(5 * time.Minute) {
		return fmt.Errorf("service: fairshare load did not drain")
	}
	r.TenantUsageNS = s.Snapshot().TenantUsage
	return nil
}

// serviceCrashRecovery is the headline invariant run in-process: a daemon
// crashed mid-flight (workers abandoned, no terminal journal records) is
// rebuilt from its journal and re-runs every owed job to the same bytes an
// uninterrupted daemon produced.
func serviceCrashRecovery(o Options, r *ServiceResult) error {
	specs := serviceSpecs(o.Seed)[:4]
	for i := range specs {
		specs[i].Persist = i == 0
	}
	r.CrashJobs = len(specs)

	refDir, err := os.MkdirTemp("", "papard-ref")
	if err != nil {
		return err
	}
	defer os.RemoveAll(refDir)
	dir, err := os.MkdirTemp("", "papard-crash")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Reference: uninterrupted run of the same specs.
	ref, err := service.New(service.Config{Nodes: 2, Workers: 1, DataDir: refDir})
	if err != nil {
		return err
	}
	ref.Start()
	var refJobs []*service.Job
	for _, sp := range specs {
		j, aerr := ref.Submit(sp)
		if aerr != nil {
			return fmt.Errorf("service: crash reference: %s", aerr.Reason)
		}
		refJobs = append(refJobs, j)
	}
	if !ref.WaitIdle(5 * time.Minute) {
		return fmt.Errorf("service: crash reference did not drain")
	}
	ref.Drain()

	// Victim: accept everything, crash after the first job lands.
	s1, err := service.New(service.Config{Nodes: 2, Workers: 1, DataDir: dir})
	if err != nil {
		return err
	}
	var ids []string
	for _, sp := range specs {
		j, aerr := s1.Submit(sp)
		if aerr != nil {
			return fmt.Errorf("service: crash victim: %s", aerr.Reason)
		}
		ids = append(ids, j.ID)
	}
	s1.Start()
	first := s1.Job(ids[0])
	select {
	case <-first.Done():
	case <-time.After(5 * time.Minute):
		return fmt.Errorf("service: crash victim's first job stuck")
	}
	s1.Crash()

	// Recovery: a fresh server on the same data dir owes the rest.
	s2, err := service.New(service.Config{Nodes: 2, Workers: 1, DataDir: dir})
	if err != nil {
		return fmt.Errorf("service: recovery open: %w", err)
	}
	s2.Start()
	defer s2.Drain()
	if !s2.WaitIdle(5 * time.Minute) {
		return fmt.Errorf("service: recovered queue did not drain")
	}
	snap := s2.Snapshot()
	r.RecoveredCount = snap.Recovered
	r.JournalAppends = snap.JournalOps
	r.CrashRecovered = snap.Recovered > 0

	r.CrashChecksumsMatch = true
	for i, refJob := range refJobs {
		j := s2.Job(ids[i])
		if j == nil {
			r.CrashChecksumsMatch = false
			break
		}
		<-j.Done()
		if j.State != service.StateDone || j.Checksum != refJob.Checksum {
			r.CrashChecksumsMatch = false
		}
	}
	refBytes, err := readPartitionTree(filepath.Join(refDir, "jobs", refJobs[0].ID))
	if err != nil {
		return err
	}
	gotBytes, err := readPartitionTree(filepath.Join(dir, "jobs", ids[0]))
	if err != nil {
		return err
	}
	r.CrashPersistIdentical = bytes.Equal(refBytes, gotBytes)
	return nil
}

// readPartitionTree concatenates a persisted job's partition files in name
// order (names included, so a missing file cannot alias an empty one).
func readPartitionTree(dir string) ([]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	var buf bytes.Buffer
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		buf.WriteString(e.Name())
		buf.WriteByte(0)
		buf.Write(b)
	}
	return buf.Bytes(), nil
}

// Render prints the service report.
func (r *ServiceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "papard service tier — %d-job load test\n", r.Jobs)
	fmt.Fprintf(&b, "  throughput: %d/%d jobs completed in %.1fs (%.0f jobs/s), fleet checksum %s\n",
		r.Completed, r.Jobs, r.WallSeconds, r.JobsPerSecond, r.FleetChecksum)
	fmt.Fprintf(&b, "  latency: p50 %.1f ms, p99 %.1f ms vs %.0f ms deadline budget — within budget: %v\n",
		r.P50MS, r.P99MS, r.BudgetMS, r.P99WithinBudget)
	fmt.Fprintf(&b, "  overload: %d jobs shed 429 at the queue cap; budget rejection carries Retry-After: %v\n",
		r.ShedOverLimit, r.BudgetShedRetryAfter)
	fmt.Fprintf(&b, "  retries: doomed-twice job finished on attempt %d (%d backoffs), bytes match clean run: %v\n",
		r.RetriedAttempts, r.Retries, r.RetryChecksumMatch)
	fmt.Fprintf(&b, "  deadline: permanently failing job cut off by wall clock: %v\n", r.DeadlineEnforced)
	tenants := make([]string, 0, len(r.TenantUsageNS))
	for t := range r.TenantUsageNS {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Fprintf(&b, "  fair share:")
	for _, t := range tenants {
		fmt.Fprintf(&b, " %s=%d ns", t, r.TenantUsageNS[t])
	}
	fmt.Fprintf(&b, " of virtual time consumed\n")
	fmt.Fprintf(&b, "  crash recovery: %d jobs journaled, %d recovered after kill (%d journal appends); checksums match reference: %v, persisted bytes identical: %v\n",
		r.CrashJobs, r.RecoveredCount, r.JournalAppends, r.CrashChecksumsMatch, r.CrashPersistIdentical)
	if r.Failed() {
		b.WriteString("  RESULT: FAILED — at least one robustness invariant violated\n")
	} else {
		b.WriteString("  RESULT: ok — all robustness invariants hold\n")
	}
	return b.String()
}
