package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/incremental"
	"repro/internal/planopt"
	"repro/internal/vtime"
)

// IncrementalCase is one (workflow, delta-size) amortization measurement:
// a resident partition set absorbs a stream of append/delete batches and
// the per-batch cost is compared with repartitioning the final state from
// scratch.
type IncrementalCase struct {
	Workflow string
	Model    string
	// DeltaFrac is the batch size as a fraction of the resident rows.
	DeltaFrac float64
	Batches   int
	// Resident is the post-stream resident row count.
	Resident int
	// MovedRows is the total rows shipped across all batches; everything
	// else was patched in place.
	MovedRows int
	// AvgDeltaMakespan is the mean virtual time of one delta batch;
	// ScratchMakespan is a from-scratch run over the same final rows.
	AvgDeltaMakespan vtime.Duration
	ScratchMakespan  vtime.Duration
	// Speedup is Scratch/AvgDelta (>1 means the delta path wins).
	Speedup float64
	// PredictedDelta is the planopt admission estimate for one batch.
	PredictedDelta vtime.Duration
	// Identical pins the headline claim: the patched partitions equal the
	// from-scratch run byte-for-byte.
	Identical bool
}

// IncrementalResult is the `-exp incremental` report.
type IncrementalResult struct {
	Nodes int
	Cases []IncrementalCase
	// Fault* report a delta batch with a rank crash injected mid-shuffle:
	// recovery must shrink the communicator and the patch must still be
	// byte-identical to the clean oracle.
	FaultWorkflow   string
	FaultFailedRank int
	FaultIdentical  bool
	// CancelUntouched: a canceled delta leaves the resident partitions
	// byte-identical to their pre-batch state.
	CancelUntouched bool
	// Repartition/Coalesce identity at a changed partition count; coalesce
	// must move zero rows over the wire.
	RepartitionIdentical bool
	CoalesceIdentical    bool
	CoalesceMovedRows    int
}

// Failed reports whether any correctness or amortization requirement was
// violated. paperbench exits nonzero on it.
func (r *IncrementalResult) Failed() bool {
	for _, c := range r.Cases {
		if !c.Identical {
			return true
		}
		if c.DeltaFrac <= 0.01 && c.AvgDeltaMakespan >= c.ScratchMakespan {
			return true
		}
	}
	return !r.FaultIdentical || !r.CancelUntouched ||
		!r.RepartitionIdentical || !r.CoalesceIdentical || r.CoalesceMovedRows != 0
}

// Render prints the amortization table and the auxiliary checks.
func (r *IncrementalResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "incremental repartitioning, %d nodes (delta batches vs from-scratch)\n", r.Nodes)
	fmt.Fprintf(&b, "%-22s %-12s %6s %9s %9s %12s %12s %8s %5s\n",
		"workflow", "model", "delta", "resident", "moved", "avg-delta", "scratch", "speedup", "ident")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-22s %-12s %5.1f%% %9d %9d %12v %12v %7.2fx %5v\n",
			c.Workflow, c.Model, c.DeltaFrac*100, c.Resident, c.MovedRows,
			c.AvgDeltaMakespan, c.ScratchMakespan, c.Speedup, c.Identical)
	}
	fmt.Fprintf(&b, "fault-injected delta (%s, rank %d crashed): identical=%v\n",
		r.FaultWorkflow, r.FaultFailedRank, r.FaultIdentical)
	fmt.Fprintf(&b, "canceled delta untouched=%v  repartition identical=%v  coalesce identical=%v moved=%d\n",
		r.CancelUntouched, r.RepartitionIdentical, r.CoalesceIdentical, r.CoalesceMovedRows)
	if r.Failed() {
		b.WriteString("FAILED: identity or amortization requirement violated\n")
	}
	return b.String()
}

// incrWorkflow bundles one workflow's plan and its base/append row streams.
type incrWorkflow struct {
	name string
	plan *core.Plan
	base []core.Row
	pool []core.Row
}

// RunIncremental measures delta amortization for the three paper policies
// across 0.1%–10% batch sizes, plus the fault, cancel, repartition and
// coalesce checks.
func RunIncremental(opts Options) (*IncrementalResult, error) {
	opts = opts.withDefaults()
	nodes := opts.Nodes / 2
	if nodes < 2 {
		nodes = 2
	}
	np := opts.Nodes

	blastArgs := map[string]string{
		"input_path": "mem://blast", "output_path": "mem://out",
		"num_partitions": fmt.Sprint(np), "num_reducers": fmt.Sprint(np),
	}
	workflows, err := incrWorkflows(opts, np, blastArgs)
	if err != nil {
		return nil, err
	}

	res := &IncrementalResult{Nodes: nodes}
	fracs := []float64{0.001, 0.01, 0.1}
	for wi, wf := range workflows {
		for fi, frac := range fracs {
			c, err := runIncrementalCase(wf, nodes, frac, opts.Seed+int64(wi*10+fi))
			if err != nil {
				return nil, fmt.Errorf("incremental %s @%.1f%%: %w", wf.name, frac*100, err)
			}
			res.Cases = append(res.Cases, *c)
		}
	}

	if err := runIncrementalAux(res, workflows, nodes, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// incrWorkflows builds the three workflow cases with disjoint base and
// append streams drawn from the same generated distributions.
func incrWorkflows(opts Options, np int, blastArgs map[string]string) ([]incrWorkflow, error) {
	blastBase := blastRows(blast.Generate(blast.EnvNR(), opts.BlastScale/8, opts.Seed))
	blastPool := blastRows(blast.Generate(blast.EnvNR(), opts.BlastScale/8, opts.Seed+1))
	graphBase := graphRows(graph.Generate(graph.Google(), opts.GraphScale/4, opts.Seed))
	graphPool := graphRows(graph.Generate(graph.Google(), opts.GraphScale/4, opts.Seed+1))

	cyclic, err := compileNamedPlan("blast_partition.xml", blastArgs)
	if err != nil {
		return nil, err
	}
	block, err := compileNamedPlan("blast_partition_block.xml", map[string]string{
		"input_path": "mem://blast", "output_path": "mem://out",
		"num_partitions": fmt.Sprint(np),
	})
	if err != nil {
		return nil, err
	}
	hybrid, err := compileNamedPlan("hybrid_cut.xml", map[string]string{
		"input_file": "mem://graph", "output_path": "mem://out",
		"num_partitions": fmt.Sprint(np), "threshold": "100",
	})
	if err != nil {
		return nil, err
	}
	return []incrWorkflow{
		{"blast_partition", cyclic, blastBase, blastPool},
		{"blast_partition_block", block, blastBase, blastPool},
		{"hybrid_cut", hybrid, graphBase, graphPool},
	}, nil
}

// runIncrementalCase streams batches of one size into a fresh engine and
// compares amortized delta cost and final bytes against from-scratch.
func runIncrementalCase(wf incrWorkflow, nodes int, frac float64, seed int64) (*IncrementalCase, error) {
	cl := cluster.New(cluster.DefaultConfig(nodes))
	eng, err := incremental.New(incremental.Config{Plan: wf.plan, Cluster: cl}, wf.base)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	const batches = 3
	appendN := int(frac * float64(len(wf.base)))
	if appendN < 1 {
		appendN = 1
	}
	var deltaSum vtime.Duration
	moved, poolAt := 0, 0
	for b := 0; b < batches; b++ {
		ids := eng.IDs()
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		batch := incremental.Batch{Deletes: ids[:appendN/2]}
		for i := 0; i < appendN && poolAt < len(wf.pool); i++ {
			batch.Appends = append(batch.Appends, wf.pool[poolAt])
			poolAt++
		}
		rep, err := eng.ApplyDelta(batch, incremental.ApplyOptions{})
		if err != nil {
			return nil, err
		}
		deltaSum += rep.Makespan
		moved += rep.MovedRows
	}

	// From-scratch oracle over the exact surviving sequence.
	final := eng.Rows()
	ocl := cluster.New(cluster.DefaultConfig(nodes))
	scratch, err := core.Execute(ocl, wf.plan, core.Input{LocalRows: spreadRows(final, ocl.Size())})
	if err != nil {
		return nil, err
	}
	avg := deltaSum / batches
	stats := &planopt.InputStats{Rows: int64(eng.Len()), AvgRowBytes: avgRowBytes(final)}
	return &IncrementalCase{
		Workflow:         wf.name,
		Model:            eng.ModelName(),
		DeltaFrac:        frac,
		Batches:          batches,
		Resident:         eng.Len(),
		MovedRows:        moved,
		AvgDeltaMakespan: avg,
		ScratchMakespan:  scratch.Makespan,
		Speedup:          float64(scratch.Makespan) / float64(avg),
		PredictedDelta:   planopt.PredictDeltaMakespan(stats, ocl.Size(), moved/batches),
		Identical:        fingerprint(eng.Partitions(), false) == fingerprint(scratch.Partitions, false),
	}, nil
}

// runIncrementalAux runs the fault, cancel, repartition and coalesce checks
// on smaller engines.
func runIncrementalAux(res *IncrementalResult, workflows []incrWorkflow, nodes int, opts Options) error {
	cyclic, block := workflows[0], workflows[1]
	small := cyclic.base[:len(cyclic.base)/4]

	// Fault-injected delta: crash a rank mid-shuffle, recovery shrinks the
	// communicator, patched bytes must still match a clean oracle.
	cl := cluster.New(cluster.DefaultConfig(nodes))
	eng, err := incremental.New(incremental.Config{Plan: cyclic.plan, Cluster: cl}, small)
	if err != nil {
		return err
	}
	crashRank := cl.Size() - 1
	cl.SetFaultPlan(&faults.Plan{Seed: opts.Seed, Crashes: []faults.Crash{{Rank: crashRank, At: 50 * vtime.Microsecond}}})
	ids := eng.IDs()
	batch := incremental.Batch{Deletes: ids[:5], Appends: cyclic.pool[:len(small)/10]}
	rep, err := eng.ApplyDelta(batch, incremental.ApplyOptions{})
	if err != nil {
		return fmt.Errorf("faulted delta: %w", err)
	}
	cl.SetFaultPlan(nil)
	ocl := cluster.New(cluster.DefaultConfig(nodes))
	oracle, err := core.Execute(ocl, cyclic.plan, core.Input{LocalRows: spreadRows(eng.Rows(), ocl.Size())})
	if err != nil {
		return err
	}
	res.FaultWorkflow = cyclic.name
	res.FaultFailedRank = crashRank
	res.FaultIdentical = rep.Recovery != nil && len(rep.Recovery.Failed) > 0 &&
		fingerprint(eng.Partitions(), false) == fingerprint(oracle.Partitions, false)

	// Canceled delta leaves the resident partitions untouched.
	before := eng.Checksum()
	cancel := make(chan struct{})
	close(cancel)
	_, err = eng.ApplyDelta(incremental.Batch{Appends: cyclic.pool[:3]}, incremental.ApplyOptions{Cancel: cancel})
	res.CancelUntouched = errors.Is(err, core.ErrCanceled) && eng.Checksum() == before

	// Repartition and coalesce identity on the block workflow.
	bcl := cluster.New(cluster.DefaultConfig(nodes))
	beng, err := incremental.New(incremental.Config{Plan: block.plan, Cluster: bcl}, small)
	if err != nil {
		return err
	}
	np := beng.NumPartitions()
	if _, err := beng.Repartition(np+3, incremental.ApplyOptions{}); err != nil {
		return fmt.Errorf("repartition: %w", err)
	}
	res.RepartitionIdentical, err = blockOracleMatch(beng, nodes, np+3)
	if err != nil {
		return err
	}
	crep, err := beng.Repartition(np, incremental.ApplyOptions{})
	if err != nil {
		return fmt.Errorf("restore np: %w", err)
	}
	_ = crep
	corep, err := beng.Coalesce(np/4, incremental.ApplyOptions{})
	if err != nil {
		return fmt.Errorf("coalesce: %w", err)
	}
	res.CoalesceMovedRows = corep.MovedRows
	res.CoalesceIdentical, err = blockOracleMatch(beng, nodes, np/4)
	return err
}

// blockOracleMatch checks the engine's partitions against a from-scratch
// block-policy run at the engine's current partition count.
func blockOracleMatch(eng *incremental.Engine, nodes, np int) (bool, error) {
	plan, err := compileNamedPlan("blast_partition_block.xml", map[string]string{
		"input_path": "mem://blast", "output_path": "mem://out",
		"num_partitions": fmt.Sprint(np),
	})
	if err != nil {
		return false, err
	}
	cl := cluster.New(cluster.DefaultConfig(nodes))
	oracle, err := core.Execute(cl, plan, core.Input{LocalRows: spreadRows(eng.Rows(), cl.Size())})
	if err != nil {
		return false, err
	}
	return fingerprint(eng.Partitions(), false) == fingerprint(oracle.Partitions, false), nil
}

// avgRowBytes estimates the mean encoded row size from a prefix.
func avgRowBytes(rows []core.Row) float64 {
	n := len(rows)
	if n == 0 {
		return 0
	}
	if n > 512 {
		n = 512
	}
	total := 0
	for _, r := range rows[:n] {
		total += len(core.EncodeRow(r))
	}
	return float64(total) / float64(n)
}
