// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated cluster. Each experiment returns a
// typed result with a Render method that prints rows shaped like the
// paper's, plus the headline shape checks ("who wins, by what factor").
//
// The paper's datasets are multi-gigabyte downloads, so every experiment
// takes a Scale factor (1.0 = paper size); defaults are chosen so the whole
// suite runs in seconds while keeping the compute-versus-communication
// balance that produces the paper's shapes. See DESIGN.md for the
// substitution table.
package experiments

import (
	"fmt"
	"strings"

	"repro"
	"repro/internal/blast"
	"repro/internal/core"
	"repro/internal/graph"
)

// Options configures an experiment run.
type Options struct {
	// BlastScale scales the env_nr/nr databases (default 0.01).
	BlastScale float64
	// GraphScale scales the three SNAP graph twins (default 0.01).
	GraphScale float64
	// Nodes is the largest cluster size (default 16, the paper's).
	Nodes int
	// Seed makes dataset generation deterministic.
	Seed int64
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.BlastScale == 0 {
		o.BlastScale = 0.02
	}
	if o.GraphScale == 0 {
		o.GraphScale = 0.01
	}
	if o.Nodes == 0 {
		o.Nodes = 16
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// framework builds a PaPar framework with the paper's two input schemas
// registered from the embedded Fig. 4/5 configuration files.
func framework() (*core.Framework, error) {
	f := core.NewFramework()
	if _, err := f.RegisterInputConfig(repro.Config("blast_db.xml")); err != nil {
		return nil, err
	}
	if _, err := f.RegisterInputConfig(repro.Config("graph_edge.xml")); err != nil {
		return nil, err
	}
	return f, nil
}

// compileBlastPlan compiles the Fig. 8 workflow for np partitions. The
// file's num_reducers default (3, the paper's walk-through value) is
// overridden with the partition count so reducers saturate the cluster;
// the runtime clamps to the rank count on smaller clusters.
func compileBlastPlan(np int) (*core.Plan, error) {
	f, err := framework()
	if err != nil {
		return nil, err
	}
	return f.CompileWorkflowConfig(repro.Config("blast_partition.xml"), map[string]string{
		"input_path":     "mem://blast",
		"output_path":    "mem://out",
		"num_partitions": fmt.Sprint(np),
		"num_reducers":   fmt.Sprint(np),
	})
}

// compileHybridPlan compiles the Fig. 10 workflow.
func compileHybridPlan(np, threshold int) (*core.Plan, error) {
	f, err := framework()
	if err != nil {
		return nil, err
	}
	return f.CompileWorkflowConfig(repro.Config("hybrid_cut.xml"), map[string]string{
		"input_file":     "mem://graph",
		"output_path":    "mem://out",
		"num_partitions": fmt.Sprint(np),
		"threshold":      fmt.Sprint(threshold),
	})
}

// spreadRows splits rows into nranks contiguous chunks (what the input
// splitter would hand each rank).
func spreadRows(rows []core.Row, nranks int) [][]core.Row {
	out := make([][]core.Row, nranks)
	for i := 0; i < nranks; i++ {
		lo := len(rows) * i / nranks
		hi := len(rows) * (i + 1) / nranks
		out[i] = rows[lo:hi]
	}
	return out
}

// blastRows converts a generated database to workflow rows.
func blastRows(db *blast.Database) []core.Row {
	return core.RecordsToRows(db.Records())
}

// graphRows converts a generated graph to workflow rows (Fig. 5 text
// schema: string vertex ids).
func graphRows(g *graph.Graph) []core.Row {
	return core.RecordsToRows(graph.EdgesToRows(g.Edges))
}

// partitionsToEntries converts final PaPar partitions back to index
// entries.
func partitionsToEntries(plan *core.Plan, parts [][]core.Row) ([][]blast.IndexEntry, error) {
	out := make([][]blast.IndexEntry, len(parts))
	for i, rows := range parts {
		recs, err := core.RowsToRecords(plan.InputSchema, rows)
		if err != nil {
			return nil, err
		}
		out[i], err = blast.FromRecords(recs)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// partitionsToEdges converts final PaPar partitions back to edges.
func partitionsToEdges(parts [][]core.Row) ([][]graph.Edge, error) {
	out := make([][]graph.Edge, len(parts))
	for i, rows := range parts {
		edges := make([]graph.Edge, 0, len(rows))
		for _, r := range rows {
			a, err := r.Values[0].AsInt()
			if err != nil {
				return nil, err
			}
			b, err := r.Values[1].AsInt()
			if err != nil {
				return nil, err
			}
			edges = append(edges, graph.Edge{Src: int32(a), Dst: int32(b)})
		}
		out[i] = edges
	}
	return out, nil
}

// table renders rows of cells with aligned columns, the shared formatter of
// every Render method.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	all := append([][]string{header}, rows...)
	for _, r := range all {
		for c, cell := range r {
			if len(cell) > width[c] {
				width[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for c, cell := range r {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[c], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for c, w := range width {
		if c > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
