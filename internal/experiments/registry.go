package experiments

import (
	"fmt"
	"strings"
)

// Renderer is any experiment result: a typed struct that can print itself
// in the paper's shape. Results also marshal to JSON for the CI determinism
// diffs.
type Renderer interface{ Render() string }

// Entry is one registered experiment. The registry is the single source of
// truth for the catalog: `paperbench -exp help`, the unknown-experiment
// error, and the README experiment table are all generated from it (a test
// fails when the README drifts).
type Entry struct {
	Name string
	Desc string
	Run  func(Options) (Renderer, error)
}

// wrapEntry adapts a typed experiment runner to the Renderer interface.
func wrapEntry[T Renderer](f func(Options) (T, error)) func(Options) (Renderer, error) {
	return func(o Options) (Renderer, error) { return f(o) }
}

// Registry lists every experiment in presentation order.
func Registry() []Entry {
	return []Entry{
		{"table2", "graph dataset statistics", wrapEntry(Table2)},
		{"correctness", "PaPar vs application partitions", wrapEntry(Correctness)},
		{"fig12", "muBLASTP search, cyclic vs block", wrapEntry(Fig12)},
		{"fig13a", "partitioning time, PaPar vs muBLASTP", wrapEntry(Fig13a)},
		{"fig13b", "PaPar strong scaling", wrapEntry(Fig13b)},
		{"fig14", "PageRank across cut methods", wrapEntry(Fig14)},
		{"fig15a", "hybrid-cut time, PaPar vs PowerLyra", wrapEntry(Fig15a)},
		{"fig15b", "hybrid-cut strong scaling", wrapEntry(Fig15b)},
		{"compress", "CSC data compression", wrapEntry(Compression)},
		{"ccomp", "connected components across cut methods (extension)", wrapEntry(ConnectedComponents)},
		{"ablations", "design-choice ablations", wrapEntry(Ablations)},
		{"chaos", "fault injection: crash, drop, corruption, checkpoint-loss and disk-fault recovery", wrapEntry(Chaos)},
		{"outofcore", "budget-constrained partitioning through the spill tier, byte-identical to in-memory", wrapEntry(OutOfCore)},
		{"skew", "per-rank load imbalance by partitioning policy (block vs cyclic, hybrid vs hash)", wrapEntry(Skew)},
		{"optimizer", "plan optimizer: fusion/elision identity, auto policy selection, fused-plan recovery", wrapEntry(RunOptimizer)},
		{"service", "papard service tier under load: throughput, overload shedding, retries, fair share, crash recovery", wrapEntry(Service)},
		{"incremental", "incremental repartitioning: amortized delta cost vs from-scratch, byte-identity per policy", wrapEntry(RunIncremental)},
	}
}

// Names lists the registry names in order.
func Names() []string {
	entries := Registry()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// HelpText renders the `-exp help` listing.
func HelpText() string {
	var b strings.Builder
	b.WriteString("experiments:\n")
	for _, e := range Registry() {
		fmt.Fprintf(&b, "  %-12s %s\n", e.Name, e.Desc)
	}
	return b.String()
}

// TableMarkdown renders the README experiment table. README.md embeds it
// between `<!-- experiments:begin -->` and `<!-- experiments:end -->`
// markers; TestREADMEExperimentTable fails when the embedded copy drifts
// from this generated one.
func TableMarkdown() string {
	var b strings.Builder
	b.WriteString("| Experiment | What it reproduces |\n")
	b.WriteString("|---|---|\n")
	for _, e := range Registry() {
		fmt.Fprintf(&b, "| `paperbench -exp %s` | %s |\n", e.Name, e.Desc)
	}
	return b.String()
}
