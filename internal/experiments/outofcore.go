package experiments

import (
	"fmt"

	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/vtime"
)

// OutOfCoreResult is the out-of-core partitioning experiment: the muBLASTP
// workflow over an nr-profile database, once unconstrained and once inside a
// fixed per-rank memory budget that forces the data plane through the disk
// tier — requiring byte-identical partitions and an identical virtual
// timeline — then once more through a disk-fault gauntlet.
type OutOfCoreResult struct {
	Workflow string
	Ranks    int
	Rows     int
	// MemBudget is the per-rank resident payload cap in bytes.
	MemBudget int64
	// InMemory* and Budgeted* compare the unconstrained run with the
	// budget-constrained one.
	InMemoryMakespan vtime.Duration
	BudgetedMakespan vtime.Duration
	InMemoryShuffle  int64
	BudgetedShuffle  int64
	// Spill is the budgeted run's disk activity (it must be non-trivial, or
	// the budget never bound).
	Spill cluster.SpillStats
	// Identical / MakespanIdentical / ShuffleIdentical pin the out-of-core
	// contract: spilling is invisible except to the disk counters.
	Identical         bool
	MakespanIdentical bool
	ShuffleIdentical  bool
	// Gauntlet* report the faulted run: a mid-run rank crash on top of
	// ENOSPC, torn writes, disk rot and one slow disk, with the spill tier
	// replicated.
	GauntletPlan          string
	GauntletMakespan      vtime.Duration
	GauntletFailed        []int
	GauntletRounds        int
	GauntletSpill         cluster.SpillStats
	GauntletIdentical     bool
	GauntletDeterministic bool
}

// Failed reports whether the experiment violated a correctness requirement.
// paperbench exits nonzero on it.
func (r *OutOfCoreResult) Failed() bool {
	return !r.Identical || !r.MakespanIdentical || !r.ShuffleIdentical ||
		r.Spill.SpillPages == 0 || r.Spill.RestorePages == 0 ||
		!r.GauntletIdentical || !r.GauntletDeterministic
}

// OutOfCore runs the experiment. The database uses the nr profile (the
// paper's 53 GB headline input) at 1/20 of the BLAST scale, so the default
// scales keep it in the same row-count band as the other experiments.
func OutOfCore(opts Options) (*OutOfCoreResult, error) {
	opts = opts.withDefaults()
	nodes := opts.Nodes / 2
	if nodes < 2 {
		nodes = 2
	}
	db := blast.Generate(blast.NR(), opts.BlastScale/20, opts.Seed)
	plan, err := compileBlastPlan(nodes * 2)
	if err != nil {
		return nil, err
	}
	rows := blastRows(db)

	// Unconstrained reference.
	cl := cluster.New(cluster.DefaultConfig(nodes))
	ref, err := core.Execute(cl, plan, core.Input{LocalRows: spreadRows(rows, cl.Size())})
	if err != nil {
		return nil, fmt.Errorf("outofcore reference: %w", err)
	}
	refFP := fingerprint(ref.Partitions, false)

	out := &OutOfCoreResult{
		Workflow:         "blast(nr)",
		Ranks:            cl.Size(),
		Rows:             len(rows),
		InMemoryMakespan: ref.Makespan,
		InMemoryShuffle:  ref.ShuffleBytes,
	}

	// The budget binds hard: a quarter of the per-rank shuffle volume, so
	// every shuffle-heavy phase must cycle through the disk tier.
	budget := ref.ShuffleBytes / int64(cl.Size()*4)
	if budget < 8<<10 {
		budget = 8 << 10
	}
	out.MemBudget = budget

	cl2 := cluster.New(cluster.DefaultConfig(nodes))
	ooc, err := core.ExecuteOpts(cl2, plan, core.Input{LocalRows: spreadRows(rows, cl2.Size())},
		core.ExecOptions{Spill: core.SpillOptions{MemBudget: budget}})
	if err != nil {
		return nil, fmt.Errorf("outofcore budgeted: %w", err)
	}
	out.BudgetedMakespan = ooc.Makespan
	out.BudgetedShuffle = ooc.ShuffleBytes
	out.Spill = cl2.Stats().Spill
	out.Identical = fingerprint(ooc.Partitions, false) == refFP
	out.MakespanIdentical = ooc.Makespan == ref.Makespan
	out.ShuffleIdentical = ooc.ShuffleBytes == ref.ShuffleBytes

	// The gauntlet: one rank dies mid-run while the (replicated) disk tier
	// suffers ENOSPC, torn writes, rot and one degraded node.
	gauntlet := &faults.Plan{
		Seed:      opts.Seed + 6,
		Crashes:   []faults.Crash{{Rank: 2, At: vtime.Duration(float64(ref.Makespan) * 0.4)}},
		Disk:      faults.Disk{ENOSPCProb: 0.3, TornProb: 0.2, RotProb: 0.02},
		SlowDisks: []faults.SlowDisk{{Node: 1, Factor: 4}},
	}
	out.GauntletPlan = gauntlet.String()
	run := func() (*core.Result, *core.RecoveryReport, cluster.SpillStats, error) {
		c := cluster.New(cluster.DefaultConfig(nodes))
		c.SetFaultPlan(gauntlet)
		res, rep, err := core.ExecuteResilientOpts(c, plan, core.Input{LocalRows: spreadRows(rows, c.Size())}, nil,
			core.ExecOptions{Spill: core.SpillOptions{MemBudget: budget, Replicate: true}})
		return res, rep, c.Stats().Spill, err
	}
	res, rep, spill, err := run()
	if err != nil {
		return nil, fmt.Errorf("outofcore gauntlet: %w", err)
	}
	out.GauntletMakespan = res.Makespan
	out.GauntletFailed = rep.Failed
	out.GauntletRounds = rep.Rounds
	out.GauntletSpill = spill
	out.GauntletIdentical = fingerprint(res.Partitions, false) == refFP
	res2, _, spill2, err := run()
	if err != nil {
		return nil, fmt.Errorf("outofcore gauntlet replay: %w", err)
	}
	out.GauntletDeterministic = res2.Makespan == res.Makespan && spill2 == spill &&
		fingerprint(res2.Partitions, false) == fingerprint(res.Partitions, false)
	return out, nil
}

// Render prints the experiment.
func (r *OutOfCoreResult) Render() string {
	verdict := func(b bool, ok, bad string) string {
		if b {
			return ok
		}
		return bad
	}
	rows := [][]string{
		{"in-memory", fmt.Sprint(r.InMemoryMakespan), fmt.Sprint(r.InMemoryShuffle), "-", "-", "-"},
		{"budgeted", fmt.Sprint(r.BudgetedMakespan), fmt.Sprint(r.BudgetedShuffle),
			fmt.Sprintf("%d/%d", r.Spill.SpillPages, r.Spill.RestorePages),
			fmt.Sprintf("%d", r.Spill.SpillBytes),
			verdict(r.Identical && r.MakespanIdentical && r.ShuffleIdentical, "identical", "DIVERGED")},
		{"gauntlet", fmt.Sprint(r.GauntletMakespan), "-",
			fmt.Sprintf("%d/%d", r.GauntletSpill.SpillPages, r.GauntletSpill.RestorePages),
			fmt.Sprintf("retry=%d fo=%d rot=%d", r.GauntletSpill.Retries, r.GauntletSpill.Failovers, r.GauntletSpill.RotDetected),
			verdict(r.GauntletIdentical, "identical", "DIVERGED") + "/" +
				verdict(r.GauntletDeterministic, "replayable", "NONDET")},
	}
	return fmt.Sprintf("Out-of-core partitioning: %s, %d rows on %d ranks, per-rank budget %d bytes.\n"+
		"The budgeted run must be byte-identical to the in-memory run (partitions, makespan, shuffle bytes)\n"+
		"while actually cycling pages through disk; the gauntlet adds a crash (%s), ENOSPC, torn writes,\n"+
		"rot and a slow disk (failed=%v rounds=%d).\n%s",
		r.Workflow, r.Rows, r.Ranks, r.MemBudget,
		r.GauntletPlan, r.GauntletFailed, r.GauntletRounds,
		table([]string{"run", "makespan", "shuffle B", "spill/restore pages", "disk", "verdict"}, rows))
}
