package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/keyval"
	"repro/internal/mpi"
	"repro/internal/mrmpi"
	"repro/internal/planopt"
	"repro/internal/service"
	"repro/internal/shufcodec"
	"repro/internal/spill"
)

// The shuffle/sort/convert microbenchmarks, runnable from the paperbench
// binary (testing.Benchmark works outside `go test`). The bodies mirror the
// bench_test.go files in internal/keyval and internal/mrmpi pair for pair,
// so `paperbench -bench` and `go test -bench` measure the same kernels.
//
// Each result carries the pre-page-refactor numbers (recorded on this
// container right before the keyval page rework) so the report shows the
// wall-clock and allocation deltas the refactor bought.

// MicrobenchResult is one benchmark with its recorded baseline.
type MicrobenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op"`
	BaselineBytesPerOp  int64   `json:"baseline_bytes_per_op"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op"`

	// Speedup is baseline ns / current ns; AllocRatio is baseline allocs /
	// current allocs (both >1 mean the refactor won).
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// Microbench is the full suite result.
type Microbench struct {
	Results []MicrobenchResult `json:"results"`
}

// baselines are the pre-refactor numbers (map-of-strings Convert, per-pair
// encode/decode, per-hasher allocation), measured with
// `go test -bench ... -benchmem -benchtime 2s` at the seed commit.
var baselines = map[string][3]float64{ // ns/op, B/op, allocs/op
	"ListAppend":          {480579, 786432, 1},
	"ListSort":            {47295741, 120, 3},
	"ConvertGrouped":      {6761154, 4392272, 39229},
	"ConvertRandom":       {6758885, 4378832, 39222},
	"EncodeDecode":        {2535628, 3981344, 9},
	"AggregateCollective": {24180197, 19590400, 191588},
	"AggregateP2P":        {25071162, 19632868, 192100},
	"ConvertReduce":       {14059483, 10753664, 200911},
	"SortLocal":           {254777063, 34144944, 508555},
}

// pr6Baselines are numbers measured on this container at the PR 6 commit
// (the last revision before the batched shuffle transport and the radix sort
// routing), so the shuffle-fast-path benchmarks report their speedup against
// the code they replaced rather than against the seed.
var pr6Baselines = map[string][3]float64{ // ns/op, B/op, allocs/op
	// aggregate → byte-order sort → aggregate, 8 ranks × 30000 pairs, with
	// the eager per-destination List scatter and the comparison sort.
	"BatchShuffleRoundTrip": {339101403, 96539612, 20642},
	// The ListSort kernel as recorded in BENCH_PR6.json: pdq over the offset
	// table with a three-way byte comparator.
	"RadixSortFixed": {15101005, 72, 3},
}

func microPairs(n, card int, seed int64) (keys, values [][]byte) {
	rng := rand.New(rand.NewSource(seed))
	keys = make([][]byte, n)
	values = make([][]byte, n)
	for i := 0; i < n; i++ {
		k := i
		if card > 0 {
			k = rng.Intn(card)
		}
		keys[i] = []byte(fmt.Sprintf("key-%08d", k))
		values[i] = []byte(fmt.Sprintf("value-%06d", i))
	}
	return keys, values
}

// codecBenchPage builds one sealed shuffle page of grouped triples in the
// distribute job's wire shape (runs of equal bucket keys, packed-group
// values with constant columns) — the codec's target traffic.
func codecBenchPage() []byte {
	encStr := func(s string) []byte {
		out := binary.LittleEndian.AppendUint32([]byte{0x01}, uint32(len(s)))
		return append(out, s...)
	}
	encInt := func(v int64) []byte {
		return binary.LittleEndian.AppendUint64([]byte{0x00}, uint64(v))
	}
	encRow := func(cols ...[]byte) []byte {
		out := binary.LittleEndian.AppendUint32(nil, uint32(len(cols)))
		for _, c := range cols {
			out = append(out, c...)
		}
		return out
	}
	l := keyval.NewList(2000)
	for i := 0; i < 2000; i++ {
		key := binary.LittleEndian.AppendUint32(nil, uint32(i/40))
		gk := encStr(fmt.Sprintf("in-vertex-%06d", i))
		n := 2 + i%5
		val := append([]byte{0x01}, gk...)
		val = binary.LittleEndian.AppendUint32(val, uint32(n))
		for j := 0; j < n; j++ {
			row := encRow(encStr(fmt.Sprintf("out-%03d", j)), gk, encInt(int64(n)))
			val = binary.LittleEndian.AppendUint32(val, uint32(len(row)))
			val = append(val, row...)
		}
		l.Add(key, val)
	}
	defer l.Release()
	return l.AppendEncoded(nil)
}

func microList(keys, values [][]byte) *keyval.List {
	l := keyval.NewList(len(keys))
	for i := range keys {
		l.Add(keys[i], values[i])
	}
	return l
}

func microShuffle(transport mrmpi.Transport, pairsPerRank int) error {
	cl := cluster.New(cluster.DefaultConfig(8))
	_, err := cl.Run(func(r *cluster.Rank) error {
		mr := mrmpi.New(mpi.NewComm(r))
		mr.SetTransport(transport)
		if err := mr.Map(func(emit mrmpi.Emitter) error {
			for k := 0; k < pairsPerRank; k++ {
				emit([]byte(fmt.Sprintf("key-%06d", k*7+r.ID())), []byte(fmt.Sprintf("value-%08d", k)))
			}
			return nil
		}); err != nil {
			return err
		}
		return mr.Aggregate(mrmpi.HashPartitioner)
	})
	return err
}

// RunMicrobench executes the suite. It takes no Options: sizes are fixed so
// numbers stay comparable across runs and against the recorded baseline.
func RunMicrobench() (*Microbench, error) {
	var failure error
	bench := func(name string, body func(b *testing.B)) MicrobenchResult {
		r := testing.Benchmark(body)
		res := MicrobenchResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if r.Bytes > 0 && r.NsPerOp() > 0 {
			res.MBPerSec = float64(r.Bytes) * 1e3 / float64(r.NsPerOp())
		}
		base, ok := baselines[name]
		if !ok {
			base, ok = pr6Baselines[name]
		}
		if ok {
			res.BaselineNsPerOp = base[0]
			res.BaselineBytesPerOp = int64(base[1])
			res.BaselineAllocsPerOp = int64(base[2])
			if res.NsPerOp > 0 {
				res.Speedup = base[0] / res.NsPerOp
			}
			if res.AllocsPerOp > 0 {
				res.AllocRatio = base[2] / float64(res.AllocsPerOp)
			}
		}
		return res
	}

	out := &Microbench{}

	keysA, valsA := microPairs(1<<14, 0, 1)
	out.Results = append(out.Results, bench("ListAppend", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if microList(keysA, valsA).Len() != len(keysA) {
				b.Fatal("bad length")
			}
		}
	}))

	keysS, valsS := microPairs(1<<15, 1<<12, 2)
	out.Results = append(out.Results, bench("ListSort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			l := microList(keysS, valsS)
			b.StartTimer()
			l.Sort()
		}
	}))

	keysG, valsG := microPairs(1<<15, 1<<10, 3)
	sorted := microList(keysG, valsG)
	sorted.Sort()
	out.Results = append(out.Results, bench("ConvertGrouped", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(keyval.Convert(sorted)) == 0 {
				b.Fatal("no groups")
			}
		}
	}))

	keysR, valsR := microPairs(1<<15, 1<<10, 4)
	random := microList(keysR, valsR)
	out.Results = append(out.Results, bench("ConvertRandom", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(keyval.Convert(random)) == 0 {
				b.Fatal("no groups")
			}
		}
	}))

	keysE, valsE := microPairs(1<<14, 0, 5)
	el := microList(keysE, valsE)
	wire := el.Encode()
	out.Results = append(out.Results, bench("EncodeDecode", func(b *testing.B) {
		b.SetBytes(int64(len(wire)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := el.Encode()
			dec, err := keyval.Decode(enc)
			if err != nil {
				b.Fatal(err)
			}
			if dec.Len() != el.Len() {
				b.Fatal("length mismatch")
			}
		}
	}))

	out.Results = append(out.Results, bench("AggregateCollective", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := microShuffle(mrmpi.Collective, 2000); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	}))
	out.Results = append(out.Results, bench("AggregateP2P", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := microShuffle(mrmpi.PointToPoint, 2000); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	}))

	out.Results = append(out.Results, bench("ConvertReduce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl := cluster.New(cluster.DefaultConfig(4))
			if _, err := cl.Run(func(r *cluster.Rank) error {
				mr := mrmpi.New(mpi.NewComm(r))
				if err := mr.Map(func(emit mrmpi.Emitter) error {
					for k := 0; k < 4000; k++ {
						emit([]byte(fmt.Sprintf("key-%04d", k%257)), []byte(fmt.Sprintf("v%07d", k)))
					}
					return nil
				}); err != nil {
					return err
				}
				mr.Convert()
				return mr.Reduce(func(g keyval.KMV, emit mrmpi.Emitter) error {
					emit(g.Key, g.Values[0])
					return nil
				})
			}); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	}))

	out.Results = append(out.Results, bench("SortLocal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl := cluster.New(cluster.DefaultConfig(8))
			if _, err := cl.Run(func(r *cluster.Rank) error {
				mr := mrmpi.New(mpi.NewComm(r))
				if err := mr.Map(func(emit mrmpi.Emitter) error {
					for k := 0; k < 8000; k++ {
						emit([]byte(fmt.Sprintf("key-%06d", (k*2654435761)%8000)), []byte("v"))
					}
					return nil
				}); err != nil {
					return err
				}
				mr.SortLocal(func(a, c keyval.KV) bool { return string(a.Key) < string(c.Key) })
				return nil
			}); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	}))

	// RadixSortFixed: the ListSort kernel again, but baselined against the
	// PR 6 comparison sort instead of the seed — the fixed-width radix
	// speedup the shuffle fast path claims, in one Speedup field.
	out.Results = append(out.Results, bench("RadixSortFixed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			l := microList(keysS, valsS)
			b.StartTimer()
			l.Sort()
		}
	}))

	// BatchShuffleRoundTrip: a full fast-path round trip — batched all-to-all
	// out, byte-order (radix) local sort, batched all-to-all back — on
	// preformatted pairs so the transport and sort dominate the measurement.
	keysB := make([][]byte, 30000)
	valB := []byte("value-01")
	for k := range keysB {
		keysB[k] = []byte(fmt.Sprintf("key-%06d", (k*2654435761)%len(keysB)))
	}
	out.Results = append(out.Results, bench("BatchShuffleRoundTrip", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl := cluster.New(cluster.DefaultConfig(8))
			if _, err := cl.Run(func(r *cluster.Rank) error {
				mr := mrmpi.New(mpi.NewComm(r))
				if err := mr.Map(func(emit mrmpi.Emitter) error {
					for k := range keysB {
						emit(keysB[k], valB)
					}
					return nil
				}); err != nil {
					return err
				}
				if err := mr.Aggregate(mrmpi.HashPartitioner); err != nil {
					return err
				}
				mr.KV().Sort()
				return mr.Aggregate(mrmpi.HashPartitioner)
			}); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	}))

	// CodecRoundTrip: the §III-D transport codec on a grouped shuffle page —
	// pack, then rebuild, per op; MB/s is raw page bytes through the codec.
	codecPage := codecBenchPage()
	out.Results = append(out.Results, bench("CodecRoundTrip", func(b *testing.B) {
		b.SetBytes(int64(len(codecPage)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			packed, ok := shufcodec.EncodePage(codecPage)
			if !ok {
				failure = fmt.Errorf("grouped bench page did not compress")
				b.Fatal(failure)
			}
			l, err := shufcodec.DecodePage(packed)
			if err != nil {
				failure = err
				b.Fatal(err)
			}
			l.Release()
			keyval.Recycle(packed)
		}
	}))

	// SpillRoundtrip: one list through the disk tier and back — WriteRun
	// framing + CRC on the way out, frame validation on the way in.
	spillDir, err := os.MkdirTemp("", "papar-bench-spill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)
	keysD, valsD := microPairs(1<<14, 0, 6)
	dl := microList(keysD, valsD)
	out.Results = append(out.Results, bench("SpillRoundtrip", func(b *testing.B) {
		st, err := spill.Open(spill.Config{Dir: filepath.Join(spillDir, fmt.Sprintf("rt-%d", b.N))})
		if err != nil {
			failure = err
			b.Fatal(err)
		}
		defer st.Close()
		b.SetBytes(int64(dl.Bytes()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := st.WriteRun(dl)
			if err != nil {
				failure = err
				b.Fatal(err)
			}
			pairs := 0
			if err := st.ReadRun(r, func(l *keyval.List) error {
				pairs += l.Len()
				return nil
			}); err != nil {
				failure = err
				b.Fatal(err)
			}
			if pairs != dl.Len() {
				b.Fatal("pair count mismatch after roundtrip")
			}
			st.Remove(r)
		}
	}))

	// SpillSort: the budget-constrained external merge sort (spill runs,
	// per-run sort, k-way merge, re-spill) on an 8-rank cluster.
	out.Results = append(out.Results, bench("SpillSort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl := cluster.New(cluster.DefaultConfig(8))
			if _, err := cl.Run(func(r *cluster.Rank) error {
				st, err := spill.Open(spill.Config{
					Dir: filepath.Join(spillDir, fmt.Sprintf("sort-%d-%d-%d", b.N, i, r.ID())),
				})
				if err != nil {
					return err
				}
				defer st.Close()
				mr := mrmpi.New(mpi.NewComm(r))
				mr.SetSpill(st, 16<<10)
				if err := mr.Map(func(emit mrmpi.Emitter) error {
					for k := 0; k < 8000; k++ {
						emit([]byte(fmt.Sprintf("key-%06d", (k*2654435761)%8000)), []byte("v"))
					}
					return nil
				}); err != nil {
					return err
				}
				mr.SortLocal(func(a, c keyval.KV) bool { return string(a.Key) < string(c.Key) })
				_, err = mr.Materialize()
				return err
			}); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	}))

	// OptimizedVsLiteral: the Fig. 8 muBLASTP workflow end to end, literal
	// vs optimizer-rewritten (fused jobs, elided shuffle). The baseline is
	// not a recorded number but the literal plan measured in-process on the
	// same data, so Speedup is exactly the real-time win the rewrite buys.
	optPlan, err := compileNamedPlan("blast_partition.xml", map[string]string{
		"input_path": "mem://blast", "output_path": "mem://out",
		"num_partitions": "8", "num_reducers": "8",
	})
	if err != nil {
		return nil, err
	}
	optRw, err := planopt.Optimize(optPlan, planopt.Options{Ranks: 8})
	if err != nil {
		return nil, err
	}
	optRows := blastRows(blast.Generate(blast.EnvNR(), 0.001, 9))
	runPlan := func(p *core.Plan) error {
		cl := cluster.New(cluster.DefaultConfig(4))
		_, err := core.Execute(cl, p, core.Input{LocalRows: spreadRows(optRows, cl.Size())})
		return err
	}
	litRun := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := runPlan(optPlan); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	})
	optRes := bench("OptimizedVsLiteral", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := runPlan(optRw.After); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	})
	optRes.BaselineNsPerOp = float64(litRun.NsPerOp())
	optRes.BaselineBytesPerOp = litRun.AllocedBytesPerOp()
	optRes.BaselineAllocsPerOp = litRun.AllocsPerOp()
	if optRes.NsPerOp > 0 {
		optRes.Speedup = optRes.BaselineNsPerOp / optRes.NsPerOp
	}
	if optRes.AllocsPerOp > 0 {
		optRes.AllocRatio = float64(optRes.BaselineAllocsPerOp) / float64(optRes.AllocsPerOp)
	}
	out.Results = append(out.Results, optRes)

	// PolicySelectOverhead: what `auto` costs before the run — reservoir
	// stats over the input plus the full optimizer pass (policy binding,
	// elision, fusion, makespan prediction). No recorded baseline; the
	// number exists so the decision cost stays visible next to the wins.
	autoPlan, err := compileNamedPlan("blast_partition_auto.xml", map[string]string{
		"input_path": "mem://blast", "output_path": "mem://out",
		"num_partitions": "8", "num_reducers": "8",
	})
	if err != nil {
		return nil, err
	}
	autoSets := spreadRows(optRows, 8)
	out.Results = append(out.Results, bench("PolicySelectOverhead", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stats, err := planopt.CollectStats(autoPlan, autoSets, 9)
			if err != nil {
				failure = err
				b.Fatal(err)
			}
			if _, err := planopt.Optimize(autoPlan, planopt.Options{Ranks: 8, Stats: stats}); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	}))

	// JournalAppend: one CRC-framed WAL record through the service journal —
	// the write that sits on papard's admission path, so its cost bounds the
	// daemon's accept rate.
	jdir, err := os.MkdirTemp("", "papar-bench-journal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(jdir)
	jrec := service.Record{
		Type: "accepted", ID: "j-00001234", Key: "bench-key", Tenant: "bench",
		Spec: &service.JobSpec{
			Workflow: "blast_partition",
			Dataset:  service.DatasetSpec{Kind: "blast", Profile: "env_nr", Scale: 0.001, Seed: 9},
			Args:     map[string]string{"num_partitions": "8"},
		},
	}
	out.Results = append(out.Results, bench("JournalAppend", func(b *testing.B) {
		jr, _, err := service.OpenJournal(filepath.Join(jdir, fmt.Sprintf("j-%d.pjl", b.N)), false)
		if err != nil {
			failure = err
			b.Fatal(err)
		}
		defer jr.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := jr.Append(jrec); err != nil {
				failure = err
				b.Fatal(err)
			}
		}
	}))

	// ServiceThroughput: a 32-job burst through a warm papard service —
	// admission, fair-share dispatch onto resident clusters, completion —
	// submit to drain. The runtime cache is warmed by a probe job first so
	// the measurement is the service path, not dataset generation.
	svc, err := service.New(service.Config{Nodes: 2, Workers: 4, Budget: 5 * time.Minute, QueueLimit: 1 << 20})
	if err != nil {
		return nil, err
	}
	svc.Start()
	defer svc.Drain()
	svcSpec := service.JobSpec{
		Workflow: "blast_partition",
		Dataset:  service.DatasetSpec{Kind: "blast", Profile: "env_nr", Scale: 0.001, Seed: 9},
		Args:     map[string]string{"num_partitions": "8"},
	}
	if _, aerr := svc.Submit(svcSpec); aerr != nil {
		return nil, fmt.Errorf("service bench probe: %s", aerr.Reason)
	}
	if !svc.WaitIdle(5 * time.Minute) {
		return nil, fmt.Errorf("service bench probe did not finish")
	}
	out.Results = append(out.Results, bench("ServiceThroughput", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 32; k++ {
				if _, aerr := svc.Submit(svcSpec); aerr != nil {
					failure = fmt.Errorf("service bench submit: %s", aerr.Reason)
					b.Fatal(failure)
				}
			}
			if !svc.WaitIdle(5 * time.Minute) {
				failure = fmt.Errorf("service bench burst did not drain")
				b.Fatal(failure)
			}
		}
	}))

	if failure != nil {
		return nil, failure
	}
	return out, nil
}

// WriteJSON stores the suite result (BENCH_PR2.json in the repo root by
// convention).
func (m *Microbench) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// LoadMicrobench reads a suite result previously stored with WriteJSON.
func LoadMicrobench(path string) (*Microbench, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Microbench{}
	if err := json.Unmarshal(buf, m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Compare checks m (the current run) against base (a recorded run) and
// returns one line per regression: a benchmark whose ns/op exceeds the
// baseline by more than tolerance (0.25 = 25% slower), or whose allocs/op
// grew beyond the same bound. Benchmarks present on only one side are
// reported too — a silently dropped benchmark must not pass the gate.
func (m *Microbench) Compare(base *Microbench, tolerance float64) []string {
	byName := map[string]MicrobenchResult{}
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	var regressions []string
	seen := map[string]bool{}
	for _, cur := range m.Results {
		seen[cur.Name] = true
		b, ok := byName[cur.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from baseline", cur.Name))
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.0f%%, tolerance %.0f%%)",
				cur.Name, cur.NsPerOp, b.NsPerOp, 100*(cur.NsPerOp/b.NsPerOp-1), 100*tolerance))
		}
		if b.AllocsPerOp > 0 && float64(cur.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf("%s: %d allocs/op vs baseline %d (+%.0f%%, tolerance %.0f%%)",
				cur.Name, cur.AllocsPerOp, b.AllocsPerOp, 100*(float64(cur.AllocsPerOp)/float64(b.AllocsPerOp)-1), 100*tolerance))
		}
	}
	for _, b := range base.Results {
		if !seen[b.Name] {
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline but not in this run", b.Name))
		}
	}
	return regressions
}

// Render prints the suite as a table against the recorded baseline.
func (m *Microbench) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "ns/op", "base ns/op", "speedup", "allocs/op", "base allocs", "ratio")
	for _, r := range m.Results {
		fmt.Fprintf(&b, "%-20s %14.0f %14.0f %7.2fx %12d %12d %7.1fx\n",
			r.Name, r.NsPerOp, r.BaselineNsPerOp, r.Speedup, r.AllocsPerOp, r.BaselineAllocsPerOp, r.AllocRatio)
		if r.MBPerSec > 0 {
			fmt.Fprintf(&b, "%-20s %14.1f MB/s\n", "", r.MBPerSec)
		}
	}
	return b.String()
}
