package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/graph"
	"repro/internal/mrmpi"
	"repro/internal/powerlyra"
	"repro/internal/vtime"
)

// CompressionRow is one graph's §III-D data-compression result.
type CompressionRow struct {
	Graph string
	// RawBytes is the wire size of the packed (grouped) triples.
	RawBytes int
	// CompressedBytes is the CSC form's wire size.
	CompressedBytes int
	// Saving is 1 - compressed/raw (the paper reports up to 13%
	// communication improvement, data dependent).
	Saving float64
	// TransferSaving is the saving applied to the shuffle wire time on the
	// paper's InfiniBand model.
	TransferSaving vtime.Duration
}

// LiveRow is one graph's measured (not modeled) result of running the
// hybrid-cut workflow end-to-end with the shuffle codec on vs off: the same
// CSC packing the offline rows model, but applied inline by the transport
// (mrmpi.SetShuffleCompress) with every framing and profitability effect
// included.
type LiveRow struct {
	Graph string
	// OffShuffleBytes / OnShuffleBytes are total interconnect bytes of the
	// codec-off and codec-on runs.
	OffShuffleBytes int64
	OnShuffleBytes  int64
	// WireSaving is 1 - on/off — the measured end-to-end §III-D saving.
	WireSaving float64
	// OfflineSaving is the modeled CompressionRow saving on the grouped
	// triples alone, for the agreement check.
	OfflineSaving float64
	// OffMakespan / OnMakespan are the simulated run times.
	OffMakespan vtime.Duration
	OnMakespan  vtime.Duration
	// MakespanSaving is 1 - on/off.
	MakespanSaving float64
	// PartitionsEqual requires the codec-on partitions to be byte-identical
	// to the codec-off ones (the codec is lossless).
	PartitionsEqual bool
	// Deterministic requires a codec-on replay to reproduce the makespan
	// and shuffle bytes exactly.
	Deterministic bool
}

// CompressionResult reproduces the §III-D data-compression measurement.
type CompressionResult struct {
	Rows []CompressionRow
	// Live holds the end-to-end transport-codec measurements.
	Live []LiveRow
}

// Failed reports whether a live run violated a §III-D requirement: lossless
// partitions, deterministic replay, and measured savings that agree with the
// offline model — on the wire (some saving, never more than the model's
// upper bound, which ignores incompressible sort/sample traffic and tag
// bytes) and on the makespan (the run must not get slower).
func (r *CompressionResult) Failed() bool {
	for _, lr := range r.Live {
		if !lr.PartitionsEqual || !lr.Deterministic {
			return true
		}
		if lr.WireSaving <= 0 || lr.WireSaving > lr.OfflineSaving {
			return true
		}
		if lr.OnMakespan > lr.OffMakespan {
			return true
		}
	}
	return false
}

// Compression measures the CSC packing on the grouped (in-vertex, edge,
// indegree) triples of each dataset — the exact intermediate data of the
// hybrid-cut workflow's group job.
func Compression(opts Options) (*CompressionResult, error) {
	opts = opts.withDefaults()
	res := &CompressionResult{}
	net := vtime.InfiniBandQDR()
	for _, prof := range graph.Profiles() {
		g := graph.Generate(prof, opts.GraphScale, opts.Seed)
		indeg := g.InDegrees()
		triples := make([]csr.Triple, g.NumEdges())
		for i, e := range g.Edges {
			// The packed format after group+count: {out-vertex, in-vertex,
			// indegree} with the in-vertex as the redundant major.
			triples[i] = csr.Triple{Major: int64(e.Dst), Minor: int64(e.Src), Value: int64(indeg[e.Dst])}
		}
		c := csr.Compress(triples)
		raw := csr.RawSize(len(triples))
		comp := c.EncodedSize()
		res.Rows = append(res.Rows, CompressionRow{
			Graph:           prof.Name,
			RawBytes:        raw,
			CompressedBytes: comp,
			Saving:          1 - float64(comp)/float64(raw),
			TransferSaving:  net.TransferTime(raw) - net.TransferTime(comp),
		})
		lr, err := liveCodecRun(opts, prof, res.Rows[len(res.Rows)-1].Saving)
		if err != nil {
			return nil, err
		}
		res.Live = append(res.Live, lr)
	}
	return res, nil
}

// liveCodecRun executes the hybrid-cut workflow twice on fresh clusters —
// codec off, then codec on (plus a codec-on replay for the determinism
// check) — and reports the measured deltas.
func liveCodecRun(opts Options, prof graph.Profile, offlineSaving float64) (LiveRow, error) {
	g := graph.Generate(prof, opts.GraphScale, opts.Seed)
	rows := graphRows(g)
	plan, err := compileHybridPlan(opts.Nodes*2, powerlyra.DefaultThreshold)
	if err != nil {
		return LiveRow{}, err
	}
	run := func(codec bool) (*core.Result, error) {
		prev := mrmpi.SetShuffleCompress(codec)
		defer mrmpi.SetShuffleCompress(prev)
		cl := cluster.New(cluster.DefaultConfig(opts.Nodes))
		return core.Execute(cl, plan, core.Input{LocalRows: spreadRows(rows, cl.Size())})
	}
	off, err := run(false)
	if err != nil {
		return LiveRow{}, fmt.Errorf("compress live (codec off): %w", err)
	}
	on, err := run(true)
	if err != nil {
		return LiveRow{}, fmt.Errorf("compress live (codec on): %w", err)
	}
	on2, err := run(true)
	if err != nil {
		return LiveRow{}, fmt.Errorf("compress live (codec replay): %w", err)
	}
	return LiveRow{
		Graph:           prof.Name,
		OffShuffleBytes: off.ShuffleBytes,
		OnShuffleBytes:  on.ShuffleBytes,
		WireSaving:      1 - float64(on.ShuffleBytes)/float64(off.ShuffleBytes),
		OfflineSaving:   offlineSaving,
		OffMakespan:     off.Makespan,
		OnMakespan:      on.Makespan,
		MakespanSaving:  1 - float64(on.Makespan)/float64(off.Makespan),
		PartitionsEqual: fingerprint(on.Partitions, false) == fingerprint(off.Partitions, false),
		Deterministic: on2.Makespan == on.Makespan && on2.ShuffleBytes == on.ShuffleBytes &&
			fingerprint(on2.Partitions, false) == fingerprint(on.Partitions, false),
	}, nil
}

// Render prints the ablation as a table.
func (r *CompressionResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Graph, fmt.Sprint(row.RawBytes), fmt.Sprint(row.CompressedBytes),
			fmt.Sprintf("%.1f%%", row.Saving*100), row.TransferSaving.String(),
		})
	}
	out := "Data compression (§III-D): packed vs CSC wire size of grouped edges\n" +
		table([]string{"graph", "packed bytes", "CSC bytes", "saving", "wire time saved"}, rows)
	if len(r.Live) == 0 {
		return out
	}
	verdict := func(b bool, ok, bad string) string {
		if b {
			return ok
		}
		return bad
	}
	live := make([][]string, 0, len(r.Live))
	for _, lr := range r.Live {
		live = append(live, []string{
			lr.Graph, fmt.Sprint(lr.OffShuffleBytes), fmt.Sprint(lr.OnShuffleBytes),
			fmt.Sprintf("%.1f%%", lr.WireSaving*100),
			fmt.Sprintf("%.1f%%", lr.OfflineSaving*100),
			fmt.Sprintf("%.2f%%", lr.MakespanSaving*100),
			verdict(lr.PartitionsEqual, "identical", "DIVERGED") + "/" +
				verdict(lr.Deterministic, "replayable", "NONDET"),
		})
	}
	return out + "\nEnd-to-end hybrid-cut with the inline transport codec (measured, not modeled):\n" +
		table([]string{"graph", "codec-off B", "codec-on B", "wire saving", "offline model", "makespan saving", "verdict"}, live)
}
