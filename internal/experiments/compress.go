package experiments

import (
	"fmt"

	"repro/internal/csr"
	"repro/internal/graph"
	"repro/internal/vtime"
)

// CompressionRow is one graph's §III-D data-compression result.
type CompressionRow struct {
	Graph string
	// RawBytes is the wire size of the packed (grouped) triples.
	RawBytes int
	// CompressedBytes is the CSC form's wire size.
	CompressedBytes int
	// Saving is 1 - compressed/raw (the paper reports up to 13%
	// communication improvement, data dependent).
	Saving float64
	// TransferSaving is the saving applied to the shuffle wire time on the
	// paper's InfiniBand model.
	TransferSaving vtime.Duration
}

// CompressionResult reproduces the §III-D data-compression measurement.
type CompressionResult struct {
	Rows []CompressionRow
}

// Compression measures the CSC packing on the grouped (in-vertex, edge,
// indegree) triples of each dataset — the exact intermediate data of the
// hybrid-cut workflow's group job.
func Compression(opts Options) (*CompressionResult, error) {
	opts = opts.withDefaults()
	res := &CompressionResult{}
	net := vtime.InfiniBandQDR()
	for _, prof := range graph.Profiles() {
		g := graph.Generate(prof, opts.GraphScale, opts.Seed)
		indeg := g.InDegrees()
		triples := make([]csr.Triple, g.NumEdges())
		for i, e := range g.Edges {
			// The packed format after group+count: {out-vertex, in-vertex,
			// indegree} with the in-vertex as the redundant major.
			triples[i] = csr.Triple{Major: int64(e.Dst), Minor: int64(e.Src), Value: int64(indeg[e.Dst])}
		}
		c := csr.Compress(triples)
		raw := csr.RawSize(len(triples))
		comp := c.EncodedSize()
		res.Rows = append(res.Rows, CompressionRow{
			Graph:           prof.Name,
			RawBytes:        raw,
			CompressedBytes: comp,
			Saving:          1 - float64(comp)/float64(raw),
			TransferSaving:  net.TransferTime(raw) - net.TransferTime(comp),
		})
	}
	return res, nil
}

// Render prints the ablation as a table.
func (r *CompressionResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Graph, fmt.Sprint(row.RawBytes), fmt.Sprint(row.CompressedBytes),
			fmt.Sprintf("%.1f%%", row.Saving*100), row.TransferSaving.String(),
		})
	}
	return "Data compression (§III-D): packed vs CSC wire size of grouped edges\n" +
		table([]string{"graph", "packed bytes", "CSC bytes", "saving", "wire time saved"}, rows)
}
