package experiments

import (
	"fmt"

	"repro/internal/ccomp"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/powerlyra"
	"repro/internal/vtime"
)

// CCompRow is one graph's Connected-Components comparison across cut
// methods (the second algorithm §II-A names as benefiting from PowerLyra;
// the paper does not plot it, so this is an extension experiment with the
// Fig. 14 structure).
type CCompRow struct {
	Graph      string
	Nodes      int
	Iterations int
	Components int
	// Normalized times (hybrid = 1).
	Hybrid, Vertex, Edge float64
	HybridTime           vtime.Duration
}

// CCompResult is the extension experiment's output.
type CCompResult struct {
	Rows []CCompRow
}

// ConnectedComponents runs min-label propagation over the three cut
// methods on the full cluster.
func ConnectedComponents(opts Options) (*CCompResult, error) {
	opts = opts.withDefaults()
	res := &CCompResult{}
	for _, prof := range graph.Profiles() {
		g := graph.Generate(prof, opts.GraphScale, opts.Seed)
		np := opts.Nodes * 2
		row := CCompRow{Graph: prof.Name, Nodes: opts.Nodes, Hybrid: 1}
		var hybrid float64
		for _, m := range []powerlyra.Method{powerlyra.HybridCut, powerlyra.VertexCut, powerlyra.EdgeCut} {
			a, err := powerlyra.Partition(g, m, np, powerlyra.DefaultThreshold)
			if err != nil {
				return nil, err
			}
			cl := cluster.New(cluster.DefaultConfig(opts.Nodes))
			r, err := ccomp.Distributed(cl, a, 0)
			if err != nil {
				return nil, err
			}
			switch m {
			case powerlyra.HybridCut:
				hybrid = float64(r.Makespan)
				row.HybridTime = r.Makespan
				row.Iterations = r.Iterations
				row.Components = ccomp.NumComponents(r.Labels)
			case powerlyra.VertexCut:
				row.Vertex = float64(r.Makespan) / hybrid
			case powerlyra.EdgeCut:
				row.Edge = float64(r.Makespan) / hybrid
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the extension experiment as a table.
func (r *CCompResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Graph, fmt.Sprint(row.Nodes), fmt.Sprint(row.Components), fmt.Sprint(row.Iterations),
			"1.00", fmt.Sprintf("%.2f", row.Vertex), fmt.Sprintf("%.2f", row.Edge),
		})
	}
	return "Extension: Connected Components across cut methods (hybrid-cut = 1.00)\n" +
		table([]string{"graph", "nodes", "components", "iterations", "hybrid-cut", "vertex-cut", "edge-cut"}, rows)
}
